//! A small Boolean-expression AST that can be lowered onto a [`BddManager`].
//!
//! Constraint functions (the paper's `Fc`) and structural gate equations are
//! conveniently written as [`Expr`] trees and then converted to BDDs in one
//! call.  [`Expr::build`] registers its intermediate results with the
//! manager's root registry while it runs, so lowering is safe even on a
//! manager with an armed auto-GC watermark (see
//! [`BddManager::set_auto_gc`]).

use crate::manager::BddManager;
use crate::node::Bdd;

/// A Boolean expression over named variables.
///
/// # Example
///
/// ```
/// use msatpg_bdd::{BddManager, Expr};
///
/// let mut m = BddManager::new();
/// // Fc = l0 + l2  (the constraint of Example 2 in the paper)
/// let fc = Expr::or(Expr::var("l0"), Expr::var("l2"));
/// let bdd = fc.build(&mut m);
/// let l0 = m.var("l0");
/// let l2 = m.var("l2");
/// assert_eq!(bdd, m.or(l0, l2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Constant `true` or `false`.
    Const(bool),
    /// A named variable.
    Var(String),
    /// Negation of a subexpression.
    Not(Box<Expr>),
    /// Conjunction of subexpressions (empty = `true`).
    And(Vec<Expr>),
    /// Disjunction of subexpressions (empty = `false`).
    Or(Vec<Expr>),
    /// Exclusive-or of exactly two subexpressions.
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// The constant `true` expression.
    pub fn t() -> Self {
        Expr::Const(true)
    }

    /// The constant `false` expression.
    pub fn f() -> Self {
        Expr::Const(false)
    }

    /// A named variable.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Self {
        Expr::Not(Box::new(e))
    }

    /// Binary conjunction.
    pub fn and(a: Expr, b: Expr) -> Self {
        Expr::And(vec![a, b])
    }

    /// N-ary conjunction.
    pub fn and_all(es: Vec<Expr>) -> Self {
        Expr::And(es)
    }

    /// Binary disjunction.
    pub fn or(a: Expr, b: Expr) -> Self {
        Expr::Or(vec![a, b])
    }

    /// N-ary disjunction.
    pub fn or_all(es: Vec<Expr>) -> Self {
        Expr::Or(es)
    }

    /// Exclusive-or.
    pub fn xor(a: Expr, b: Expr) -> Self {
        Expr::Xor(Box::new(a), Box::new(b))
    }

    /// Lowers the expression onto a manager, declaring any variables it
    /// mentions that are not declared yet.
    ///
    /// Every intermediate result is protected (and unprotected again) while
    /// the remaining subexpressions lower, so a garbage collection triggered
    /// mid-build — by an armed watermark or an explicit call from a custom
    /// variable hook — can never sweep a half-assembled function.
    pub fn build(&self, m: &mut BddManager) -> Bdd {
        match self {
            Expr::Const(b) => m.constant(*b),
            Expr::Var(name) => m.var(name),
            Expr::Not(e) => {
                let inner = e.build(m);
                m.not(inner)
            }
            Expr::And(es) => {
                let mut acc = m.one();
                for e in es {
                    m.protect(acc);
                    let b = e.build(m);
                    m.unprotect(acc);
                    acc = m.and(acc, b);
                }
                acc
            }
            Expr::Or(es) => {
                let mut acc = m.zero();
                for e in es {
                    m.protect(acc);
                    let b = e.build(m);
                    m.unprotect(acc);
                    acc = m.or(acc, b);
                }
                acc
            }
            Expr::Xor(a, b) => {
                let ba = a.build(m);
                m.protect(ba);
                let bb = b.build(m);
                m.unprotect(ba);
                m.xor(ba, bb)
            }
        }
    }

    /// Collects the variable names referenced by the expression (with
    /// duplicates removed, in first-appearance order).
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(n) => {
                if !out.iter().any(|x| x == n) {
                    out.push(n.clone());
                }
            }
            Expr::Not(e) => e.collect_vars(out),
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            Expr::Xor(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_build_to_terminals() {
        let mut m = BddManager::new();
        assert!(Expr::t().build(&mut m).is_one());
        assert!(Expr::f().build(&mut m).is_zero());
    }

    #[test]
    fn nested_expression_matches_manual_construction() {
        let mut m = BddManager::new();
        let e = Expr::and(
            Expr::or(Expr::var("a"), Expr::var("b")),
            Expr::not(Expr::var("c")),
        );
        let built = e.build(&mut m);
        let a = m.var("a");
        let b = m.var("b");
        let c = m.var("c");
        let manual = {
            let ab = m.or(a, b);
            let nc = m.not(c);
            m.and(ab, nc)
        };
        assert_eq!(built, manual);
    }

    #[test]
    fn xor_expression() {
        let mut m = BddManager::new();
        let e = Expr::xor(Expr::var("x"), Expr::var("y"));
        let built = e.build(&mut m);
        let x = m.var("x");
        let y = m.var("y");
        assert_eq!(built, m.xor(x, y));
    }

    #[test]
    fn empty_and_or() {
        let mut m = BddManager::new();
        assert!(Expr::and_all(vec![]).build(&mut m).is_one());
        assert!(Expr::or_all(vec![]).build(&mut m).is_zero());
    }

    #[test]
    fn build_is_safe_under_auto_gc() {
        // A wide disjunction of products lowered onto a manager with an
        // aggressive watermark: collections fire mid-build, yet the result
        // matches a build on a manager that never collects.
        let products: Vec<Expr> = (0..24)
            .map(|i| {
                Expr::and(
                    Expr::var(format!("p{i}")),
                    Expr::not(Expr::var(format!("q{i}"))),
                )
            })
            .collect();
        let e = Expr::or_all(products);
        let mut collected = BddManager::new();
        collected.set_auto_gc(Some(8));
        let under_gc = e.build(&mut collected);
        assert!(
            collected.stats().gc_runs > 0,
            "the watermark must have fired during the build"
        );
        let mut plain = BddManager::new();
        let reference = e.build(&mut plain);
        assert_eq!(collected.sat_count(under_gc), plain.sat_count(reference));
        assert_eq!(collected.size(under_gc), plain.size(reference));
    }

    #[test]
    fn variables_are_collected_in_order_without_duplicates() {
        let e = Expr::or_all(vec![
            Expr::var("b"),
            Expr::and(Expr::var("a"), Expr::var("b")),
            Expr::xor(Expr::var("c"), Expr::not(Expr::var("a"))),
        ]);
        assert_eq!(e.variables(), vec!["b", "a", "c"]);
    }
}
