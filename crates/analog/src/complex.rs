//! Minimal complex-number arithmetic used by the AC analysis.
//!
//! A dedicated type (rather than an external dependency) keeps the workspace
//! self-contained; only the operations needed by MNA stamping and LU
//! factorization are provided.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// Returns a non-finite value if `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let sum = a + b;
        assert!(close(sum.re, 4.0) && close(sum.im, 1.0));
        let diff = a - b;
        assert!(close(diff.re, -2.0) && close(diff.im, 3.0));
        let prod = a * b;
        // (1+2j)(3-j) = 3 - j + 6j - 2j^2 = 5 + 5j
        assert!(close(prod.re, 5.0) && close(prod.im, 5.0));
        let quot = prod / b;
        assert!(close(quot.re, a.re) && close(quot.im, a.im));
    }

    #[test]
    fn magnitude_and_phase() {
        let z = Complex::new(3.0, 4.0);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
        let j = Complex::J;
        assert!(close(j.arg(), std::f64::consts::FRAC_PI_2));
    }

    #[test]
    fn conjugate_and_reciprocal() {
        let z = Complex::new(2.0, -3.0);
        assert_eq!(z.conj(), Complex::new(2.0, 3.0));
        let r = z.recip() * z;
        assert!(close(r.re, 1.0) && close(r.im, 0.0));
    }

    #[test]
    fn assign_operators() {
        let mut z = Complex::ONE;
        z += Complex::J;
        z *= Complex::new(2.0, 0.0);
        z -= Complex::ONE;
        z /= Complex::new(1.0, 0.0);
        assert!(close(z.re, 1.0) && close(z.im, 2.0));
        assert_eq!(-Complex::ONE, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn display_and_from() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1+2j");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2j");
        let z: Complex = 4.5.into();
        assert_eq!(z, Complex::from_real(4.5));
        assert!(z.is_finite());
    }
}
