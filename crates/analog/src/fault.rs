//! Analog fault models: parametric deviations and catastrophic faults.

use std::fmt;

use crate::netlist::{Circuit, ElementId};

/// The kind of analog fault injected into an element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AnalogFaultKind {
    /// Parametric (soft) fault: the element value deviates by the given
    /// relative amount (`0.10` = +10 %, `-0.10` = −10 %).
    Deviation {
        /// Relative deviation as a fraction (may be negative).
        relative: f64,
    },
    /// Catastrophic open circuit (the element effectively disappears).
    Open,
    /// Catastrophic short circuit (the element becomes a near-zero
    /// impedance).
    Short,
}

/// A fault bound to a specific element of a circuit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalogFault {
    /// The faulty element.
    pub element: ElementId,
    /// The fault kind.
    pub kind: AnalogFaultKind,
}

impl AnalogFault {
    /// A parametric deviation fault.
    pub fn deviation(element: ElementId, relative: f64) -> Self {
        AnalogFault {
            element,
            kind: AnalogFaultKind::Deviation { relative },
        }
    }

    /// An open-circuit fault.
    pub fn open(element: ElementId) -> Self {
        AnalogFault {
            element,
            kind: AnalogFaultKind::Open,
        }
    }

    /// A short-circuit fault.
    pub fn short(element: ElementId) -> Self {
        AnalogFault {
            element,
            kind: AnalogFaultKind::Short,
        }
    }

    /// Returns a copy of `circuit` with the fault injected.
    ///
    /// Opens and shorts are modelled by scaling the element value by a large
    /// factor in the direction that increases/decreases its admittance:
    /// resistors and inductors are opened by multiplying and shorted by
    /// dividing their value by 10⁹; capacitors behave the other way around
    /// (a huge capacitor is a short, a tiny one an open).
    pub fn apply(&self, circuit: &Circuit) -> Circuit {
        use crate::netlist::ElementKind;
        let mut faulty = circuit.clone();
        match self.kind {
            AnalogFaultKind::Deviation { relative } => {
                faulty.scale_value(self.element, 1.0 + relative);
            }
            AnalogFaultKind::Open | AnalogFaultKind::Short => {
                let is_capacitor = matches!(
                    circuit.element(self.element).kind,
                    ElementKind::Capacitor { .. }
                );
                let open = matches!(self.kind, AnalogFaultKind::Open);
                // For R/L: open = big value, short = tiny value.
                // For C: open = tiny value, short = big value.
                let factor = if open != is_capacitor { 1.0e9 } else { 1.0e-9 };
                faulty.scale_value(self.element, factor);
            }
        }
        faulty
    }
}

impl fmt::Display for AnalogFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AnalogFaultKind::Deviation { relative } => {
                write!(
                    f,
                    "element #{} deviation {:+.1}%",
                    self.element.index(),
                    relative * 100.0
                )
            }
            AnalogFaultKind::Open => write!(f, "element #{} open", self.element.index()),
            AnalogFaultKind::Short => write!(f, "element #{} short", self.element.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::Mna;
    use crate::netlist::Circuit;

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 10.0, 1.0);
        c.resistor("R1", vin, vout, 1.0e3);
        c.resistor("R2", vout, Circuit::GROUND, 1.0e3);
        c
    }

    #[test]
    fn deviation_fault_shifts_output() {
        let c = divider();
        let r2 = c.find_element("R2").unwrap();
        let faulty = AnalogFault::deviation(r2, 0.5).apply(&c);
        let vout = c.find_node("vout").unwrap();
        let nominal = Mna::new(&c).solve_dc().unwrap().voltage(vout).re;
        let shifted = Mna::new(&faulty).solve_dc().unwrap().voltage(vout).re;
        assert!((nominal - 5.0).abs() < 1e-9);
        assert!(shifted > nominal, "increasing R2 raises Vout");
        // Original circuit untouched.
        assert_eq!(c.value(r2), 1.0e3);
    }

    #[test]
    fn open_and_short_faults_on_resistor() {
        let c = divider();
        let r2 = c.find_element("R2").unwrap();
        let vout = c.find_node("vout").unwrap();
        let open = AnalogFault::open(r2).apply(&c);
        let short = AnalogFault::short(r2).apply(&c);
        let v_open = Mna::new(&open).solve_dc().unwrap().voltage(vout).re;
        let v_short = Mna::new(&short).solve_dc().unwrap().voltage(vout).re;
        assert!(v_open > 9.9, "open bottom resistor pulls Vout to Vin");
        assert!(v_short < 0.1, "short bottom resistor pulls Vout to ground");
    }

    #[test]
    fn open_capacitor_behaves_like_removed_capacitor() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R", vin, vout, 1.0e3);
        c.capacitor("C", vout, Circuit::GROUND, 159.0e-9);
        let cap = c.find_element("C").unwrap();
        let open = AnalogFault::open(cap).apply(&c);
        // With the capacitor open, the low-pass becomes an all-pass at 10 kHz.
        let g = Mna::new(&open).gain("Vin", vout, 10_000.0).unwrap();
        assert!(g > 0.999);
        let short = AnalogFault::short(cap).apply(&c);
        let g2 = Mna::new(&short).gain("Vin", vout, 10.0).unwrap();
        assert!(g2 < 1e-3);
    }

    #[test]
    fn display_is_informative() {
        let c = divider();
        let r2 = c.find_element("R2").unwrap();
        assert!(format!("{}", AnalogFault::deviation(r2, 0.2)).contains("+20.0%"));
        assert!(format!("{}", AnalogFault::open(r2)).contains("open"));
        assert!(format!("{}", AnalogFault::short(r2)).contains("short"));
    }
}
