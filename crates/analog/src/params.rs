//! Measurable circuit parameters (the paper's test "performances").
//!
//! A [`ParameterSpec`] names a quantity such as *DC gain at Vout* or *center
//! frequency*; [`measure`] evaluates it on a concrete circuit.  These are the
//! columns of the element-deviation tables (Example 1, Tables 3 and 8).

use crate::mna::Mna;
use crate::netlist::{Circuit, NodeId};
use crate::response::{ResponseAnalyzer, SweepConfig};
use crate::AnalogError;

/// The kind of measurement a parameter performs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParameterKind {
    /// DC gain `|H(0)|`.
    DcGain,
    /// AC gain magnitude at a fixed frequency.
    AcGain {
        /// Measurement frequency in hertz.
        freq_hz: f64,
    },
    /// Maximum gain over the sweep range (center-frequency gain for
    /// band-pass responses).
    MaxGain,
    /// Frequency of maximum gain.
    CenterFrequency,
    /// Low −3 dB cut-off frequency (below the gain peak).
    LowCutoff,
    /// High −3 dB cut-off frequency (above the gain peak).
    HighCutoff,
}

/// A named, measurable parameter of a circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct ParameterSpec {
    /// Short name used in reports (e.g. `"A1"`, `"f0"`).
    pub name: String,
    /// What is measured.
    pub kind: ParameterKind,
    /// Name of the driving source element.
    pub source: String,
    /// Name of the output node observed.
    pub output: String,
    /// Frequency-sweep configuration used for peak/cut-off searches.
    pub sweep: SweepConfig,
}

impl ParameterSpec {
    /// Creates a parameter spec with the default sweep configuration.
    pub fn new(name: &str, kind: ParameterKind, source: &str, output: &str) -> Self {
        ParameterSpec {
            name: name.to_owned(),
            kind,
            source: source.to_owned(),
            output: output.to_owned(),
            sweep: SweepConfig::default(),
        }
    }

    /// Replaces the sweep configuration used by this parameter.
    pub fn with_sweep(mut self, sweep: SweepConfig) -> Self {
        self.sweep = sweep;
        self
    }

    /// Resolves the output node on a circuit.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::UnknownNode`] if the output node does not exist.
    pub fn output_node(&self, circuit: &Circuit) -> Result<NodeId, AnalogError> {
        circuit
            .find_node(&self.output)
            .ok_or_else(|| AnalogError::UnknownNode {
                name: self.output.clone(),
            })
    }
}

/// Measures a parameter on a circuit.
///
/// # Errors
///
/// Returns an error if the output node or source is unknown, the circuit
/// matrix is singular, or the requested feature (e.g. a cut-off frequency)
/// does not exist in the sweep range.
pub fn measure(circuit: &Circuit, spec: &ParameterSpec) -> Result<f64, AnalogError> {
    let mna = Mna::new(circuit);
    measure_with_mna(&mna, spec)
}

/// Measures a parameter through an existing (possibly patched) MNA engine,
/// reusing its stamp pattern and cached per-frequency factorizations.  This
/// is the hot path of the deviation analysis, which measures the same
/// parameters thousands of times under different element values.
///
/// # Errors
///
/// Same conditions as [`measure`].
pub fn measure_with_mna(mna: &Mna<'_>, spec: &ParameterSpec) -> Result<f64, AnalogError> {
    let output = spec.output_node(mna.circuit())?;
    let analyzer = ResponseAnalyzer::from_mna(mna, &spec.source, output).with_sweep(spec.sweep);
    match spec.kind {
        ParameterKind::DcGain => analyzer.dc_gain(),
        ParameterKind::AcGain { freq_hz } => analyzer.gain_at(freq_hz),
        ParameterKind::MaxGain => Ok(analyzer.peak()?.1),
        ParameterKind::CenterFrequency => analyzer.center_frequency(),
        ParameterKind::LowCutoff => analyzer.low_cutoff(),
        ParameterKind::HighCutoff => analyzer.high_cutoff(),
    }
}

/// Measures every parameter of a list, returning `(name, value)` pairs.
///
/// # Errors
///
/// Fails on the first parameter that cannot be measured.
pub fn measure_all(
    circuit: &Circuit,
    specs: &[ParameterSpec],
) -> Result<Vec<(String, f64)>, AnalogError> {
    specs
        .iter()
        .map(|s| measure(circuit, s).map(|v| (s.name.clone(), v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;

    fn rc_lowpass() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R", vin, vout, 1.0e3);
        c.capacitor("C", vout, Circuit::GROUND, 159.154943e-9);
        c
    }

    #[test]
    fn dc_and_ac_gain_measurements() {
        let c = rc_lowpass();
        let dc = ParameterSpec::new("Adc", ParameterKind::DcGain, "Vin", "vout");
        let ac = ParameterSpec::new(
            "A10k",
            ParameterKind::AcGain { freq_hz: 10_000.0 },
            "Vin",
            "vout",
        );
        assert!((measure(&c, &dc).unwrap() - 1.0).abs() < 1e-6);
        let g10k = measure(&c, &ac).unwrap();
        assert!(g10k < 0.2, "10 kHz is an order of magnitude above cutoff");
    }

    #[test]
    fn cutoff_measurement() {
        let c = rc_lowpass();
        let fh = ParameterSpec::new("fh", ParameterKind::HighCutoff, "Vin", "vout");
        let f = measure(&c, &fh).unwrap();
        assert!((f - 1000.0).abs() / 1000.0 < 0.02);
    }

    #[test]
    fn unknown_output_node_is_an_error() {
        let c = rc_lowpass();
        let bad = ParameterSpec::new("A", ParameterKind::DcGain, "Vin", "nonexistent");
        assert!(matches!(
            measure(&c, &bad),
            Err(AnalogError::UnknownNode { .. })
        ));
    }

    #[test]
    fn measure_all_returns_named_values() {
        let c = rc_lowpass();
        let specs = vec![
            ParameterSpec::new("Adc", ParameterKind::DcGain, "Vin", "vout"),
            ParameterSpec::new("fh", ParameterKind::HighCutoff, "Vin", "vout"),
        ];
        let vals = measure_all(&c, &specs).unwrap();
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0].0, "Adc");
        assert!(vals[1].1 > 900.0);
    }
}
