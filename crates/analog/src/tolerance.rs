//! Tolerances and relative deviations.

use std::fmt;

/// A symmetric relative tolerance box `[-x, +x]` (e.g. `Tolerance::percent(5.0)`
/// for the paper's ±5 % parameter boxes).
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Tolerance(f64);

impl Tolerance {
    /// Creates a tolerance from a fractional half-width (`0.05` = ±5 %).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite.
    pub fn from_fraction(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "tolerance must be a finite non-negative fraction"
        );
        Tolerance(fraction)
    }

    /// Creates a tolerance from a percentage (`5.0` = ±5 %).
    ///
    /// # Panics
    ///
    /// Panics if `percent` is negative or not finite.
    pub fn percent(percent: f64) -> Self {
        Self::from_fraction(percent / 100.0)
    }

    /// Half-width of the box as a fraction.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// Half-width of the box in percent.
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns `true` if the relative deviation `deviation` lies inside the
    /// tolerance box (inclusive).
    pub fn contains(self, deviation: f64) -> bool {
        deviation.abs() <= self.0 + 1e-15
    }
}

impl Default for Tolerance {
    /// The paper's default: ±5 %.
    fn default() -> Self {
        Tolerance(0.05)
    }
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "±{:.3}%", self.as_percent())
    }
}

/// Relative deviation of a measured value with respect to a reference value.
///
/// Returns `0.0` when the reference is zero and the value equals it; returns
/// `f64::INFINITY` when the reference is zero but the value is not.
pub fn relative_deviation(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if value == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (value - reference) / reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tolerance::percent(5.0);
        assert!((t.fraction() - 0.05).abs() < 1e-12);
        assert!((t.as_percent() - 5.0).abs() < 1e-12);
        assert_eq!(Tolerance::default(), Tolerance::from_fraction(0.05));
        assert_eq!(format!("{t}"), "±5.000%");
    }

    #[test]
    fn containment() {
        let t = Tolerance::percent(5.0);
        assert!(t.contains(0.04));
        assert!(t.contains(-0.05));
        assert!(!t.contains(0.0501));
        assert!(!t.contains(-0.10));
    }

    #[test]
    fn relative_deviation_behaviour() {
        assert!((relative_deviation(1.05, 1.0) - 0.05).abs() < 1e-12);
        assert!((relative_deviation(0.9, 1.0) + 0.1).abs() < 1e-12);
        assert_eq!(relative_deviation(0.0, 0.0), 0.0);
        assert_eq!(relative_deviation(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_panics() {
        let _ = Tolerance::percent(-1.0);
    }
}
