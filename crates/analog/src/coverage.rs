//! Bipartite parameter/element coverage graph and test-set selection.
//!
//! The paper (via reference \[8\]) models the "which parameters should be
//! measured" question as a bipartite graph between primary-output parameters
//! and circuit elements, weighted by the detectable element deviation.  The
//! test-set selection picks the smallest set of parameters that covers every
//! coverable element at its best achievable deviation.

use std::collections::BTreeMap;

use crate::sensitivity::DeviationReport;

/// An edge of the coverage graph: measuring `parameter` detects a deviation
/// of `deviation` (fraction) or more in `element`.
#[derive(Clone, Debug, PartialEq)]
pub struct CoverageEdge {
    /// Parameter name.
    pub parameter: String,
    /// Element name.
    pub element: String,
    /// Smallest detectable relative deviation (fraction).
    pub deviation: f64,
}

/// The bipartite coverage graph extracted from a [`DeviationReport`].
#[derive(Clone, Debug, Default)]
pub struct CoverageGraph {
    edges: Vec<CoverageEdge>,
    parameters: Vec<String>,
    elements: Vec<String>,
}

impl CoverageGraph {
    /// Builds the graph from a deviation report, keeping only detectable
    /// pairs.
    pub fn from_report(report: &DeviationReport) -> Self {
        let edges = report
            .rows()
            .iter()
            .filter_map(|r| {
                r.detectable_deviation.map(|d| CoverageEdge {
                    parameter: r.parameter.clone(),
                    element: r.element.clone(),
                    deviation: d,
                })
            })
            .collect();
        CoverageGraph {
            edges,
            parameters: report.parameters().to_vec(),
            elements: report.elements().iter().map(|(_, n)| n.clone()).collect(),
        }
    }

    /// All edges of the graph.
    pub fn edges(&self) -> &[CoverageEdge] {
        &self.edges
    }

    /// All parameter names (including parameters with no edge).
    pub fn parameters(&self) -> &[String] {
        &self.parameters
    }

    /// All element names (including uncoverable elements).
    pub fn elements(&self) -> &[String] {
        &self.elements
    }

    /// Best (smallest) detectable deviation of an element over all
    /// parameters.
    pub fn best_deviation(&self, element: &str) -> Option<f64> {
        self.edges
            .iter()
            .filter(|e| e.element == element)
            .map(|e| e.deviation)
            .fold(None, |acc, d| {
                Some(match acc {
                    None => d,
                    Some(prev) => prev.min(d),
                })
            })
    }

    /// Elements with no incident edge: no measured parameter can detect any
    /// deviation in them (up to the analysis search cap).
    pub fn uncoverable_elements(&self) -> Vec<String> {
        self.elements
            .iter()
            .filter(|e| self.best_deviation(e).is_none())
            .cloned()
            .collect()
    }

    /// Greedy test-set selection: repeatedly pick the parameter that covers
    /// the most not-yet-covered elements at their best achievable deviation
    /// (ties broken by total coverage quality), until every coverable element
    /// is covered.
    pub fn select_test_set(&self) -> TestSetSelection {
        // target deviation per element = best over all parameters
        let mut target: BTreeMap<&str, f64> = BTreeMap::new();
        for e in &self.edges {
            let entry = target.entry(e.element.as_str()).or_insert(f64::INFINITY);
            *entry = entry.min(e.deviation);
        }
        let mut uncovered: Vec<&str> = target.keys().copied().collect();
        let mut chosen: Vec<String> = Vec::new();
        while !uncovered.is_empty() {
            let mut best_param: Option<&str> = None;
            let mut best_count = 0usize;
            let mut best_quality = f64::INFINITY;
            for p in &self.parameters {
                // An element is "covered" by p if p achieves (close to) the
                // element's best deviation.
                let covered: Vec<&str> = uncovered
                    .iter()
                    .copied()
                    .filter(|el| {
                        self.edges.iter().any(|e| {
                            e.parameter == *p
                                && e.element == *el
                                && e.deviation <= target[el] * 1.000001
                        })
                    })
                    .collect();
                let quality: f64 = covered.iter().map(|el| target[el]).sum();
                if covered.len() > best_count
                    || (covered.len() == best_count && covered.len() > 0 && quality < best_quality)
                {
                    best_count = covered.len();
                    best_param = Some(p);
                    best_quality = quality;
                }
            }
            match best_param {
                Some(p) if best_count > 0 => {
                    uncovered.retain(|el| {
                        !self.edges.iter().any(|e| {
                            e.parameter == p
                                && e.element == *el
                                && e.deviation <= target[el] * 1.000001
                        })
                    });
                    chosen.push(p.to_owned());
                }
                _ => break,
            }
        }
        let element_coverage = self
            .elements
            .iter()
            .map(|el| {
                let d = self
                    .edges
                    .iter()
                    .filter(|e| chosen.contains(&e.parameter) && &e.element == el)
                    .map(|e| e.deviation)
                    .fold(f64::INFINITY, f64::min);
                (el.clone(), if d.is_finite() { Some(d) } else { None })
            })
            .collect();
        TestSetSelection {
            parameters: chosen,
            element_coverage,
        }
    }
}

/// The outcome of test-set selection: the chosen parameters and the
/// per-element coverage they achieve.
#[derive(Clone, Debug, Default)]
pub struct TestSetSelection {
    /// The selected parameters, in selection order.
    pub parameters: Vec<String>,
    /// For each element, the detectable deviation achieved by the selected
    /// parameter set (`None` = uncovered).
    pub element_coverage: Vec<(String, Option<f64>)>,
}

impl TestSetSelection {
    /// Fraction of elements covered by the selection.
    pub fn coverage_ratio(&self) -> f64 {
        if self.element_coverage.is_empty() {
            return 0.0;
        }
        let covered = self
            .element_coverage
            .iter()
            .filter(|(_, d)| d.is_some())
            .count();
        covered as f64 / self.element_coverage.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;
    use crate::params::{ParameterKind, ParameterSpec};
    use crate::sensitivity::WorstCaseAnalysis;

    fn two_stage_divider() -> (Circuit, Vec<ParameterSpec>) {
        // Two independent dividers driven by the same source; parameter A
        // observes the first, parameter B the second.
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid_a = c.node("outa");
        let mid_b = c.node("outb");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R1", vin, mid_a, 1.0e3);
        c.resistor("R2", mid_a, Circuit::GROUND, 1.0e3);
        c.resistor("R3", vin, mid_b, 1.0e3);
        c.resistor("R4", mid_b, Circuit::GROUND, 1.0e3);
        let specs = vec![
            ParameterSpec::new("A", ParameterKind::DcGain, "Vin", "outa"),
            ParameterSpec::new("B", ParameterKind::DcGain, "Vin", "outb"),
        ];
        (c, specs)
    }

    #[test]
    fn selection_needs_both_parameters() {
        let (c, specs) = two_stage_divider();
        let report = WorstCaseAnalysis::new(&c, &specs)
            .with_worst_case(false)
            .run()
            .unwrap();
        let graph = CoverageGraph::from_report(&report);
        assert_eq!(graph.uncoverable_elements().len(), 0);
        let sel = graph.select_test_set();
        assert_eq!(
            sel.parameters.len(),
            2,
            "each output covers its own divider"
        );
        assert!((sel.coverage_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_deviation_is_minimum_over_parameters() {
        let graph = CoverageGraph {
            edges: vec![
                CoverageEdge {
                    parameter: "A".into(),
                    element: "R1".into(),
                    deviation: 0.2,
                },
                CoverageEdge {
                    parameter: "B".into(),
                    element: "R1".into(),
                    deviation: 0.1,
                },
            ],
            parameters: vec!["A".into(), "B".into()],
            elements: vec!["R1".into(), "R9".into()],
        };
        assert_eq!(graph.best_deviation("R1"), Some(0.1));
        assert_eq!(graph.best_deviation("R9"), None);
        assert_eq!(graph.uncoverable_elements(), vec!["R9".to_owned()]);
        let sel = graph.select_test_set();
        assert_eq!(sel.parameters, vec!["B".to_owned()]);
        assert!((sel.coverage_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_selects_nothing() {
        let graph = CoverageGraph::default();
        let sel = graph.select_test_set();
        assert!(sel.parameters.is_empty());
        assert_eq!(sel.coverage_ratio(), 0.0);
    }
}
