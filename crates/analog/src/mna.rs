//! Modified nodal analysis (MNA): DC and AC small-signal solutions.
//!
//! ## Engine layout
//!
//! Every stamp of the MNA system is linear in the complex frequency, so the
//! engine splits the system as `A(s) = G + s·C` with **real** matrices `G`
//! and `C`.  [`Mna::new`] walks the circuit **once**, recording for every
//! element the list of `(matrix, row, col, coefficient)` entries it
//! contributes — the *structural stamp pattern* — and assembles `G` and `C`
//! from it.  After that:
//!
//! * a solve at frequency `f` assembles `A = G + j·2πf·C` into a cached
//!   per-frequency system, LU-factors it once ([`crate::matrix::LuFactor`],
//!   storage reused), and answers any number of right-hand sides (drives)
//!   against the same factorization — repeated sweeps over the same grid
//!   (peak search, −3 dB bisection) hit the cache and skip both assembly and
//!   factorization;
//! * a parameter deviation ([`Mna::set_value`] / [`Mna::scale_value`])
//!   patches only the few `G`/`C` entries its element touches — including
//!   inside every cached per-frequency system — instead of re-stamping the
//!   whole matrix, so a deviation analysis re-uses all structural work
//!   across its thousands of probe solves.
//!
//! The single-pole op-amp model `A(s) = a0/(1 + s/ω)` is folded into the
//! `G + s·C` form by multiplying its constraint row through by the
//! denominator, which leaves the solution unchanged.
//!
//! Voltage sources, VCVSs, op-amps and inductors contribute branch-current
//! unknowns.

use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::TAU;

use crate::complex::Complex;
use crate::matrix::LuFactor;
use crate::netlist::{Circuit, ElementId, ElementKind, NodeId, OpAmpModel};
use crate::AnalogError;

/// Which independent sources drive the circuit during a solve.
#[derive(Clone, Debug, PartialEq)]
pub enum Drive {
    /// Every source uses its own DC value (used by [`Mna::solve_dc`]).
    AllDc,
    /// Every source uses its own AC magnitude (used by [`Mna::solve_ac`]).
    AllAc,
    /// Only the named source is active, with the given magnitude; all other
    /// independent sources are zeroed.  This is how transfer functions are
    /// computed.
    Single {
        /// Name of the active source element.
        source: String,
        /// Magnitude applied to the source.
        magnitude: f64,
    },
}

/// The result of one MNA solve: node voltages and source/branch currents.
#[derive(Clone, Debug)]
pub struct Solution {
    voltages: Vec<Complex>,
    branch_currents: HashMap<ElementId, Complex>,
}

impl Solution {
    /// Complex voltage at `node` (ground reads as exactly zero).
    pub fn voltage(&self, node: NodeId) -> Complex {
        self.voltages[node.index()]
    }

    /// Voltage difference `V(a) − V(b)`.
    pub fn voltage_between(&self, a: NodeId, b: NodeId) -> Complex {
        self.voltage(a) - self.voltage(b)
    }

    /// Branch current of an element that carries a current unknown (voltage
    /// sources, VCVS, op-amps, inductors), if present.
    pub fn branch_current(&self, element: ElementId) -> Option<Complex> {
        self.branch_currents.get(&element).copied()
    }
}

/// Counters exposing how much work the sweep-reuse machinery avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total linear solves performed.
    pub solves: u64,
    /// Full `G + sC` assemblies (one per distinct frequency since the last
    /// cache clear; everything else was served from the system cache).
    pub assemblies: u64,
    /// LU factorizations performed (re-done after a value patch, reused for
    /// repeated solves at an unchanged frequency).
    pub factorizations: u64,
    /// Element-value patches applied.
    pub patches: u64,
}

/// Which of the two real matrices an entry belongs to.
#[derive(Clone, Copy, Debug)]
enum Target {
    G,
    C,
}

/// How a stamp entry's numeric contribution derives from the element value.
#[derive(Clone, Copy, Debug)]
enum Dep {
    /// `factor` (independent of the element value).
    Const,
    /// `factor · value` (capacitors, inductor impedance, gains).
    Value,
    /// `factor / value` (resistor conductance).
    Inverse,
}

/// One `(matrix, row, col)` entry of an element's structural stamp pattern.
#[derive(Clone, Copy, Debug)]
struct Stamp {
    target: Target,
    row: u32,
    col: u32,
    factor: f64,
    dep: Dep,
}

impl Stamp {
    #[inline]
    fn contribution(&self, value: f64) -> f64 {
        match self.dep {
            Dep::Const => self.factor,
            Dep::Value => self.factor * value,
            Dep::Inverse => self.factor / value,
        }
    }
}

/// How an independent source contributes to the right-hand side.
#[derive(Clone, Copy, Debug)]
enum RhsStamp {
    /// Voltage source: `b[row] = value`.
    Branch { row: u32 },
    /// Current source: `b[plus] -= value`, `b[minus] += value`.
    Nodal {
        plus: Option<u32>,
        minus: Option<u32>,
    },
}

/// A fully assembled system at one frequency; `lu.is_factored()` says
/// whether the stored factorization still matches `a`.
struct CachedSystem {
    /// `G + s·C`, row-major.
    a: Vec<Complex>,
    lu: LuFactor,
    /// Engine tick of the most recent solve at this frequency (drives LRU
    /// eviction).
    last_used: u64,
}

/// Bound on the number of per-frequency systems kept alive.  When a new
/// frequency arrives at capacity, the least-recently-used system is evicted
/// — fine-grid bisection searches keep their warm working set cached while
/// memory stays bounded.
const MAX_CACHED_SYSTEMS: usize = 512;

struct Engine {
    /// Real part (conductance) matrix, row-major `n × n`.
    g: Vec<f64>,
    /// Frequency-proportional (susceptance) matrix, row-major `n × n`.
    c: Vec<f64>,
    /// Current (possibly patched) scalar value per element.
    values: Vec<f64>,
    /// Nominal values from the circuit, for [`Mna::reset_values`].
    nominal: Vec<f64>,
    /// Per-frequency assembled systems, keyed by `f64::to_bits(freq_hz)`.
    systems: HashMap<u64, CachedSystem>,
    /// Reusable right-hand-side / solution buffer.
    rhs: Vec<Complex>,
    /// Monotone solve counter used as the LRU clock of `systems`.
    tick: u64,
    stats: SolverStats,
}

/// The MNA engine bound to one circuit.
///
/// # Example
///
/// ```
/// use msatpg_analog::netlist::Circuit;
/// use msatpg_analog::mna::Mna;
///
/// // A simple RC low-pass: fc = 1/(2π·RC) ≈ 1.59 kHz
/// let mut c = Circuit::new();
/// let vin = c.node("vin");
/// let vout = c.node("vout");
/// c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
/// c.resistor("R", vin, vout, 1.0e3);
/// let cap = c.capacitor("C", vout, Circuit::GROUND, 100.0e-9);
/// let mna = Mna::new(&c);
/// let dc = mna.solve_dc().unwrap();
/// assert!((dc.voltage(vout).abs() - 0.0).abs() < 1e-9); // DC value of source is 0
/// let ac = mna.solve_ac(1.0).unwrap();
/// assert!((ac.voltage(vout).abs() - 1.0).abs() < 1e-3); // passband
/// // Parameter deviations patch the stamped system instead of rebuilding it:
/// mna.scale_value(cap, 10.0);
/// let shifted = mna.solve_ac(1.0e4).unwrap();
/// mna.reset_values();
/// assert!(shifted.voltage(vout).abs() < mna.solve_ac(1.0e4).unwrap().voltage(vout).abs());
/// ```
pub struct Mna<'a> {
    circuit: &'a Circuit,
    /// Elements that contribute a branch-current unknown, in matrix order.
    branch_elements: Vec<ElementId>,
    /// Number of non-ground node unknowns.
    n_nodes: usize,
    /// Total unknowns.
    n: usize,
    /// Structural stamp pattern, indexed by element id.
    element_stamps: Vec<Vec<Stamp>>,
    /// Right-hand-side pattern: `(element, stamp, dc_value)` per source.
    rhs_stamps: Vec<(ElementId, RhsStamp, f64)>,
    engine: RefCell<Engine>,
}

impl<'a> Mna<'a> {
    /// Prepares the MNA engine for `circuit`: derives the structural stamp
    /// pattern of every element and assembles the real `G` and `C` matrices
    /// once.
    pub fn new(circuit: &'a Circuit) -> Self {
        let branch_elements: Vec<ElementId> = circuit
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e.kind,
                    ElementKind::VoltageSource { .. }
                        | ElementKind::Vcvs { .. }
                        | ElementKind::OpAmp { .. }
                        | ElementKind::Inductor { .. }
                )
            })
            .map(|(id, _)| id)
            .collect();
        let n_nodes = circuit.node_count() - 1; // excluding ground
        let n = n_nodes + branch_elements.len();

        // Map: node -> row/column (ground maps to None).
        let row = |node: NodeId| -> Option<u32> {
            if node.is_ground() {
                None
            } else {
                Some(node.index() as u32 - 1)
            }
        };
        let branch_row: HashMap<ElementId, u32> = branch_elements
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, (n_nodes + i) as u32))
            .collect();

        let mut element_stamps: Vec<Vec<Stamp>> = Vec::with_capacity(circuit.element_count());
        let mut rhs_stamps = Vec::new();
        for (id, e) in circuit.iter() {
            let mut stamps = Vec::new();
            // Conductance-style two-terminal pattern: ±y at (i,i), (j,j),
            // (i,j), (j,i).
            let admittance = |stamps: &mut Vec<Stamp>, target: Target, dep: Dep| {
                let (na, nb) = (row(e.nodes[0]), row(e.nodes[1]));
                if let Some(i) = na {
                    stamps.push(Stamp {
                        target,
                        row: i,
                        col: i,
                        factor: 1.0,
                        dep,
                    });
                    if let Some(j) = nb {
                        stamps.push(Stamp {
                            target,
                            row: i,
                            col: j,
                            factor: -1.0,
                            dep,
                        });
                    }
                }
                if let Some(j) = nb {
                    stamps.push(Stamp {
                        target,
                        row: j,
                        col: j,
                        factor: 1.0,
                        dep,
                    });
                    if let Some(i) = na {
                        stamps.push(Stamp {
                            target,
                            row: j,
                            col: i,
                            factor: -1.0,
                            dep,
                        });
                    }
                }
            };
            // Branch-voltage coupling pattern: ±1 at (i,k), (k,i), (j,k), (k,j).
            let branch_coupling = |stamps: &mut Vec<Stamp>, k: u32, np: NodeId, nn: NodeId| {
                if let Some(i) = row(np) {
                    stamps.push(Stamp {
                        target: Target::G,
                        row: i,
                        col: k,
                        factor: 1.0,
                        dep: Dep::Const,
                    });
                    stamps.push(Stamp {
                        target: Target::G,
                        row: k,
                        col: i,
                        factor: 1.0,
                        dep: Dep::Const,
                    });
                }
                if let Some(j) = row(nn) {
                    stamps.push(Stamp {
                        target: Target::G,
                        row: j,
                        col: k,
                        factor: -1.0,
                        dep: Dep::Const,
                    });
                    stamps.push(Stamp {
                        target: Target::G,
                        row: k,
                        col: j,
                        factor: -1.0,
                        dep: Dep::Const,
                    });
                }
            };
            match e.kind {
                ElementKind::Resistor { .. } => {
                    admittance(&mut stamps, Target::G, Dep::Inverse);
                }
                ElementKind::Capacitor { .. } => {
                    admittance(&mut stamps, Target::C, Dep::Value);
                }
                ElementKind::Inductor { .. } => {
                    // Branch formulation: V(a) − V(b) − s·L·I = 0
                    let k = branch_row[&id];
                    branch_coupling(&mut stamps, k, e.nodes[0], e.nodes[1]);
                    stamps.push(Stamp {
                        target: Target::C,
                        row: k,
                        col: k,
                        factor: -1.0,
                        dep: Dep::Value,
                    });
                }
                ElementKind::VoltageSource { dc, .. } => {
                    let k = branch_row[&id];
                    branch_coupling(&mut stamps, k, e.nodes[0], e.nodes[1]);
                    rhs_stamps.push((id, RhsStamp::Branch { row: k }, dc));
                }
                ElementKind::CurrentSource { dc, .. } => {
                    rhs_stamps.push((
                        id,
                        RhsStamp::Nodal {
                            plus: row(e.nodes[0]),
                            minus: row(e.nodes[1]),
                        },
                        dc,
                    ));
                }
                ElementKind::Vcvs { .. } => {
                    // V(p) − V(n) − gain·(V(cp) − V(cn)) = 0
                    let k = branch_row[&id];
                    branch_coupling(&mut stamps, k, e.nodes[0], e.nodes[1]);
                    if let Some(i) = row(e.nodes[2]) {
                        stamps.push(Stamp {
                            target: Target::G,
                            row: k,
                            col: i,
                            factor: -1.0,
                            dep: Dep::Value,
                        });
                    }
                    if let Some(j) = row(e.nodes[3]) {
                        stamps.push(Stamp {
                            target: Target::G,
                            row: k,
                            col: j,
                            factor: 1.0,
                            dep: Dep::Value,
                        });
                    }
                }
                ElementKind::OpAmp { model } => {
                    // Output current is the branch unknown, injected at `out`.
                    let k = branch_row[&id];
                    let (inp, inn, out) = (e.nodes[0], e.nodes[1], e.nodes[2]);
                    if let Some(o) = row(out) {
                        stamps.push(Stamp {
                            target: Target::G,
                            row: o,
                            col: k,
                            factor: 1.0,
                            dep: Dep::Const,
                        });
                    }
                    match model {
                        OpAmpModel::Ideal => {
                            // Constraint: V(in+) − V(in−) = 0
                            if let Some(i) = row(inp) {
                                stamps.push(Stamp {
                                    target: Target::G,
                                    row: k,
                                    col: i,
                                    factor: 1.0,
                                    dep: Dep::Const,
                                });
                            }
                            if let Some(j) = row(inn) {
                                stamps.push(Stamp {
                                    target: Target::G,
                                    row: k,
                                    col: j,
                                    factor: -1.0,
                                    dep: Dep::Const,
                                });
                            }
                        }
                        OpAmpModel::FiniteGain { pole_hz, .. } => {
                            // V(out) = A(s)·(V(in+) − V(in−)) with
                            // A(s) = a0 / (1 + s/(2π·pole_hz)).  Multiplying
                            // the row by the denominator keeps the system in
                            // G + s·C form without changing the solution:
                            // (1 + s/ω)·V(out) − a0·(V(in+) − V(in−)) = 0.
                            if let Some(o) = row(out) {
                                stamps.push(Stamp {
                                    target: Target::G,
                                    row: k,
                                    col: o,
                                    factor: 1.0,
                                    dep: Dep::Const,
                                });
                                stamps.push(Stamp {
                                    target: Target::C,
                                    row: k,
                                    col: o,
                                    factor: 1.0 / (TAU * pole_hz),
                                    dep: Dep::Const,
                                });
                            }
                            // The element "value" is a0 (see ElementKind::value).
                            if let Some(i) = row(inp) {
                                stamps.push(Stamp {
                                    target: Target::G,
                                    row: k,
                                    col: i,
                                    factor: -1.0,
                                    dep: Dep::Value,
                                });
                            }
                            if let Some(j) = row(inn) {
                                stamps.push(Stamp {
                                    target: Target::G,
                                    row: k,
                                    col: j,
                                    factor: 1.0,
                                    dep: Dep::Value,
                                });
                            }
                        }
                    }
                }
            }
            element_stamps.push(stamps);
        }

        let values: Vec<f64> = circuit.iter().map(|(id, _)| circuit.value(id)).collect();
        let mut g = vec![0.0; n * n];
        let mut c = vec![0.0; n * n];
        for (stamps, &value) in element_stamps.iter().zip(&values) {
            for stamp in stamps {
                let slot = stamp.row as usize * n + stamp.col as usize;
                match stamp.target {
                    Target::G => g[slot] += stamp.contribution(value),
                    Target::C => c[slot] += stamp.contribution(value),
                }
            }
        }
        let engine = Engine {
            g,
            c,
            values: values.clone(),
            nominal: values,
            systems: HashMap::new(),
            rhs: vec![Complex::ZERO; n],
            tick: 0,
            stats: SolverStats::default(),
        };

        Mna {
            circuit,
            branch_elements,
            n_nodes,
            n,
            element_stamps,
            rhs_stamps,
            engine: RefCell::new(engine),
        }
    }

    /// The circuit this engine was built for.
    pub fn circuit(&self) -> &'a Circuit {
        self.circuit
    }

    /// Number of unknowns in the MNA system.
    pub fn unknown_count(&self) -> usize {
        self.n
    }

    /// Current (possibly patched) scalar value of an element.
    pub fn value(&self, element: ElementId) -> f64 {
        self.engine.borrow().values[element.index()]
    }

    /// Replaces the scalar value of an element, patching only the `G`/`C`
    /// entries of its stamp pattern (and every cached per-frequency system)
    /// instead of re-stamping the matrices.  The bound circuit is never
    /// modified.
    ///
    /// A value whose contribution is not finite (e.g. a resistor set to
    /// exactly `0.0`, whose conductance is infinite) cannot be expressed as
    /// an incremental delta; such transitions fall back to an exact rebuild
    /// of the matrices so the engine recovers fully once a finite value is
    /// restored.  Solving *while* such a value is in place reports the
    /// system as singular.
    pub fn set_value(&self, element: ElementId, new_value: f64) {
        let idx = element.index();
        let mut engine = self.engine.borrow_mut();
        let engine = &mut *engine;
        let old_value = engine.values[idx];
        if old_value == new_value {
            return;
        }
        engine.values[idx] = new_value;
        engine.stats.patches += 1;
        let n = self.n;
        // First pass: a non-finite delta (value passing through zero on an
        // inverse-dependent stamp) would poison the matrices permanently if
        // accumulated, so rebuild exactly instead.
        let all_finite = self.element_stamps[idx].iter().all(|stamp| {
            matches!(stamp.dep, Dep::Const)
                || (stamp.contribution(new_value) - stamp.contribution(old_value)).is_finite()
        });
        if !all_finite {
            self.rebuild_matrices(engine);
            return;
        }
        for stamp in &self.element_stamps[idx] {
            if matches!(stamp.dep, Dep::Const) {
                continue;
            }
            let delta = stamp.contribution(new_value) - stamp.contribution(old_value);
            let slot = stamp.row as usize * n + stamp.col as usize;
            match stamp.target {
                Target::G => {
                    engine.g[slot] += delta;
                    for system in engine.systems.values_mut() {
                        system.a[slot] += Complex::from_real(delta);
                        system.lu.invalidate();
                    }
                }
                Target::C => {
                    engine.c[slot] += delta;
                    for (&key, system) in engine.systems.iter_mut() {
                        // s·Δ is purely imaginary; at DC (and for Δ so small
                        // that ω·Δ underflows to zero) the cached system is
                        // bit-identical, so keep its factorization warm.
                        let imag = TAU * f64::from_bits(key) * delta;
                        if imag != 0.0 {
                            system.a[slot] += Complex::new(0.0, imag);
                            system.lu.invalidate();
                        }
                    }
                }
            }
        }
    }

    /// Re-stamps `G` and `C` from the pattern and the current values, and
    /// drops the per-frequency cache.
    fn rebuild_matrices(&self, engine: &mut Engine) {
        engine.g.iter_mut().for_each(|x| *x = 0.0);
        engine.c.iter_mut().for_each(|x| *x = 0.0);
        let n = self.n;
        for (stamps, &value) in self.element_stamps.iter().zip(engine.values.iter()) {
            for stamp in stamps {
                let slot = stamp.row as usize * n + stamp.col as usize;
                match stamp.target {
                    Target::G => engine.g[slot] += stamp.contribution(value),
                    Target::C => engine.c[slot] += stamp.contribution(value),
                }
            }
        }
        engine.systems.clear();
    }

    /// Multiplies the scalar value of an element by `factor` (see
    /// [`Mna::set_value`]).
    pub fn scale_value(&self, element: ElementId, factor: f64) {
        self.set_value(element, self.value(element) * factor);
    }

    /// Restores every element to its nominal (circuit) value.  The matrices
    /// are rebuilt from the stamp pattern, clearing any numerical drift
    /// accumulated by long patch sequences, and the system cache is dropped.
    pub fn reset_values(&self) {
        let mut engine = self.engine.borrow_mut();
        let engine = &mut *engine;
        let (values, nominal) = (&mut engine.values, &engine.nominal);
        values.copy_from_slice(nominal);
        self.rebuild_matrices(engine);
    }

    /// Counters for solves, assemblies, factorizations and patches since the
    /// engine was built.
    pub fn solver_stats(&self) -> SolverStats {
        self.engine.borrow().stats
    }

    /// Number of per-frequency systems currently cached.
    pub fn cached_system_count(&self) -> usize {
        self.engine.borrow().systems.len()
    }

    /// Drops all cached per-frequency systems (bounding memory for very long
    /// sweeps; they are rebuilt on demand).
    pub fn clear_system_cache(&self) {
        self.engine.borrow_mut().systems.clear();
    }

    /// Solves the DC operating point (all capacitors open, inductors
    /// shorted, sources at their DC values).
    ///
    /// # Errors
    ///
    /// Returns an error if the MNA matrix is singular.
    pub fn solve_dc(&self) -> Result<Solution, AnalogError> {
        self.solve(0.0, &Drive::AllDc)
    }

    /// Solves the AC small-signal response at `freq_hz` with every source at
    /// its AC magnitude.
    ///
    /// # Errors
    ///
    /// Returns an error if the MNA matrix is singular.
    pub fn solve_ac(&self, freq_hz: f64) -> Result<Solution, AnalogError> {
        self.solve(freq_hz, &Drive::AllAc)
    }

    /// Solves at `freq_hz` with only the named source active at the given
    /// magnitude (other sources are zeroed); `freq_hz = 0` performs a DC
    /// solve.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::UnknownElement`] if the source does not exist,
    /// or a singular-matrix error.
    pub fn solve_single_source(
        &self,
        source: &str,
        magnitude: f64,
        freq_hz: f64,
    ) -> Result<Solution, AnalogError> {
        if self.circuit.find_element(source).is_none() {
            return Err(AnalogError::UnknownElement {
                name: source.to_owned(),
            });
        }
        self.solve(
            freq_hz,
            &Drive::Single {
                source: source.to_owned(),
                magnitude,
            },
        )
    }

    /// Complex transfer function `V(output) / stimulus` from the named
    /// source to `output` at `freq_hz` (unit-magnitude stimulus).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Mna::solve_single_source`].
    pub fn transfer(
        &self,
        source: &str,
        output: NodeId,
        freq_hz: f64,
    ) -> Result<Complex, AnalogError> {
        let sol = self.solve_single_source(source, 1.0, freq_hz)?;
        Ok(sol.voltage(output))
    }

    /// Gain magnitude `|V(output) / stimulus|` at `freq_hz`.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Mna::transfer`].
    pub fn gain(&self, source: &str, output: NodeId, freq_hz: f64) -> Result<f64, AnalogError> {
        Ok(self.transfer(source, output, freq_hz)?.abs())
    }

    fn source_value(&self, id: ElementId, dc: f64, ac: f64, drive: &Drive) -> f64 {
        match drive {
            Drive::AllDc => dc,
            Drive::AllAc => ac,
            Drive::Single { source, magnitude } => {
                if self.circuit.element(id).name == *source {
                    *magnitude
                } else {
                    0.0
                }
            }
        }
    }

    fn solve(&self, freq_hz: f64, drive: &Drive) -> Result<Solution, AnalogError> {
        let n = self.n;
        if n == 0 {
            return Ok(Solution {
                voltages: vec![Complex::ZERO; 1],
                branch_currents: HashMap::new(),
            });
        }
        let mut engine = self.engine.borrow_mut();
        let engine = &mut *engine;
        engine.stats.solves += 1;

        let key = freq_hz.to_bits();
        engine.tick += 1;
        let tick = engine.tick;
        if !engine.systems.contains_key(&key) {
            // Bound memory only when a genuinely new frequency arrives, and
            // evict the least-recently-used system rather than clearing
            // wholesale: a bisection search oscillating over a fine grid
            // keeps its entire warm working set factored.
            if engine.systems.len() >= MAX_CACHED_SYSTEMS {
                let coldest = engine
                    .systems
                    .iter()
                    .min_by_key(|(_, s)| s.last_used)
                    .map(|(&k, _)| k)
                    .expect("cache at capacity is non-empty");
                engine.systems.remove(&coldest);
            }
            engine.stats.assemblies += 1;
            let omega = TAU * freq_hz;
            let a = engine
                .g
                .iter()
                .zip(&engine.c)
                .map(|(&g, &c)| Complex::new(g, omega * c))
                .collect();
            engine.systems.insert(
                key,
                CachedSystem {
                    a,
                    lu: LuFactor::new(n),
                    last_used: tick,
                },
            );
        }
        let system = engine
            .systems
            .get_mut(&key)
            .expect("system was just inserted");
        system.last_used = tick;
        if !system.lu.is_factored() {
            engine.stats.factorizations += 1;
            system.lu.refactor_slice(&system.a)?;
        }

        // Right-hand side from the source pattern (reusing the buffer).
        engine.rhs.iter_mut().for_each(|x| *x = Complex::ZERO);
        for &(id, stamp, dc) in &self.rhs_stamps {
            let ac = engine.values[id.index()];
            let value = self.source_value(id, dc, ac, drive);
            match stamp {
                RhsStamp::Branch { row } => {
                    engine.rhs[row as usize] = Complex::from_real(value);
                }
                RhsStamp::Nodal { plus, minus } => {
                    if let Some(i) = plus {
                        engine.rhs[i as usize] -= Complex::from_real(value);
                    }
                    if let Some(j) = minus {
                        engine.rhs[j as usize] += Complex::from_real(value);
                    }
                }
            }
        }
        system.lu.solve_in_place(&mut engine.rhs);
        let x = &engine.rhs;

        let mut voltages = vec![Complex::ZERO; self.circuit.node_count()];
        for node_idx in 1..self.circuit.node_count() {
            voltages[node_idx] = x[node_idx - 1];
        }
        let branch_currents = self
            .branch_elements
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, x[self.n_nodes + i]))
            .collect();
        Ok(Solution {
            voltages,
            branch_currents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::OpAmpModel;

    fn rc_lowpass() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 1.0, 1.0);
        c.resistor("R", vin, vout, 1.0e3);
        c.capacitor("C", vout, Circuit::GROUND, 159.154943e-9); // fc ≈ 1 kHz
        (c, vout)
    }

    #[test]
    fn voltage_divider_dc() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        c.voltage_source("Vin", vin, Circuit::GROUND, 10.0, 1.0);
        c.resistor("R1", vin, mid, 2.0e3);
        c.resistor("R2", mid, Circuit::GROUND, 3.0e3);
        let sol = Mna::new(&c).solve_dc().unwrap();
        assert!((sol.voltage(mid).re - 6.0).abs() < 1e-9);
        // Source current: 10 V across 5 kΩ = 2 mA flowing out of + terminal.
        let i = sol.branch_current(c.find_element("Vin").unwrap()).unwrap();
        assert!((i.re.abs() - 2.0e-3).abs() < 1e-9);
    }

    #[test]
    fn rc_lowpass_cutoff() {
        let (c, vout) = rc_lowpass();
        let mna = Mna::new(&c);
        // Well below cutoff: gain ≈ 1.  At cutoff: 1/sqrt(2).  Well above: small.
        let g_low = mna.gain("Vin", vout, 1.0).unwrap();
        let g_fc = mna.gain("Vin", vout, 1000.0).unwrap();
        let g_high = mna.gain("Vin", vout, 100_000.0).unwrap();
        assert!((g_low - 1.0).abs() < 1e-3);
        assert!((g_fc - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!(g_high < 0.02);
    }

    #[test]
    fn inverting_amplifier_with_ideal_opamp() {
        // Gain = -Rf/Rin = -10
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vminus = c.node("vminus");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("Rin", vin, vminus, 1.0e3);
        c.resistor("Rf", vminus, vout, 10.0e3);
        c.opamp("A1", Circuit::GROUND, vminus, vout, OpAmpModel::Ideal);
        let mna = Mna::new(&c);
        let h = mna.transfer("Vin", vout, 100.0).unwrap();
        assert!((h.re + 10.0).abs() < 1e-6);
        assert!(h.im.abs() < 1e-9);
    }

    #[test]
    fn inverting_amplifier_with_finite_gain_opamp() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vminus = c.node("vminus");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("Rin", vin, vminus, 1.0e3);
        c.resistor("Rf", vminus, vout, 10.0e3);
        c.opamp(
            "A1",
            Circuit::GROUND,
            vminus,
            vout,
            OpAmpModel::FiniteGain {
                a0: 1.0e6,
                pole_hz: 10.0,
            },
        );
        let mna = Mna::new(&c);
        let h = mna.transfer("Vin", vout, 1.0).unwrap();
        // Finite but large gain: very close to -10.
        assert!((h.abs() - 10.0).abs() < 0.01);
    }

    #[test]
    fn finite_gain_opamp_rolls_off_above_the_pole() {
        // Open-loop follower behaviour: closed-loop bandwidth of the
        // inverting amp is a0·pole/(1+Rf/Rin) ≈ 0.9 MHz; well above it the
        // gain must fall clearly below the low-frequency value.
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vminus = c.node("vminus");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("Rin", vin, vminus, 1.0e3);
        c.resistor("Rf", vminus, vout, 10.0e3);
        c.opamp(
            "A1",
            Circuit::GROUND,
            vminus,
            vout,
            OpAmpModel::FiniteGain {
                a0: 1.0e5,
                pole_hz: 10.0,
            },
        );
        let mna = Mna::new(&c);
        let g_low = mna.gain("Vin", vout, 100.0).unwrap();
        let g_high = mna.gain("Vin", vout, 10.0e6).unwrap();
        assert!((g_low - 10.0).abs() < 0.1, "low-frequency gain {g_low}");
        assert!(g_high < g_low / 5.0, "high-frequency gain {g_high}");
    }

    #[test]
    fn vcvs_gain_stage() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.vcvs("E1", vout, Circuit::GROUND, vin, Circuit::GROUND, 5.0);
        c.resistor("Rload", vout, Circuit::GROUND, 1.0e3);
        let mna = Mna::new(&c);
        let h = mna.transfer("Vin", vout, 50.0).unwrap();
        assert!((h.re - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rl_highpass_behaviour() {
        // Series R from source, inductor to ground: V(out) rises with f.
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R", vin, vout, 1.0e3);
        c.inductor("L", vout, Circuit::GROUND, 0.1);
        let mna = Mna::new(&c);
        let g_low = mna.gain("Vin", vout, 10.0).unwrap();
        let g_high = mna.gain("Vin", vout, 100_000.0).unwrap();
        assert!(g_low < 0.01);
        assert!(g_high > 0.98);
        // DC: inductor is a short.
        let dc = mna.solve_dc().unwrap();
        assert!(dc.voltage(vout).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n1 = c.node("n1");
        c.current_source("I1", Circuit::GROUND, n1, 1.0e-3, 1.0e-3);
        c.resistor("R1", n1, Circuit::GROUND, 1.0e3);
        let sol = Mna::new(&c).solve_dc().unwrap();
        // 1 mA into 1 kΩ = 1 V.
        assert!((sol.voltage(n1).re - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_source_drive_zeroes_other_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let bnode = c.node("b");
        c.voltage_source("V1", a, Circuit::GROUND, 1.0, 1.0);
        c.voltage_source("V2", bnode, Circuit::GROUND, 1.0, 1.0);
        c.resistor("R1", a, bnode, 1.0e3);
        let mna = Mna::new(&c);
        let sol = mna.solve_single_source("V1", 2.0, 0.0).unwrap();
        assert!((sol.voltage(a).re - 2.0).abs() < 1e-12);
        assert!(sol.voltage(bnode).abs() < 1e-12);
        assert!(mna.solve_single_source("nope", 1.0, 0.0).is_err());
    }

    #[test]
    fn unknown_count_matches_structure() {
        let (c, _) = rc_lowpass();
        let mna = Mna::new(&c);
        // 2 non-ground nodes + 1 voltage-source branch.
        assert_eq!(mna.unknown_count(), 3);
    }

    #[test]
    fn value_patching_matches_a_rebuilt_circuit() {
        let (c, vout) = rc_lowpass();
        let r = c.find_element("R").unwrap();
        let cap = c.find_element("C").unwrap();
        let mna = Mna::new(&c);
        // Patch R to 2 kΩ and C to half: cutoff stays at ~1 kHz.
        mna.set_value(r, 2.0e3);
        mna.scale_value(cap, 0.5);
        assert_eq!(mna.value(r), 2.0e3);
        let mut rebuilt = c.clone();
        rebuilt.set_value(r, 2.0e3);
        rebuilt.scale_value(cap, 0.5);
        let reference = Mna::new(&rebuilt);
        for freq in [1.0, 500.0, 1000.0, 20_000.0] {
            let a = mna.gain("Vin", vout, freq).unwrap();
            let b = reference.gain("Vin", vout, freq).unwrap();
            assert!(
                (a - b).abs() < 1e-12,
                "gain mismatch at {freq} Hz: {a} vs {b}"
            );
        }
        // Restoring the nominal values restores the nominal response.
        mna.reset_values();
        let nominal = Mna::new(&c);
        for freq in [1.0, 1000.0, 20_000.0] {
            let a = mna.gain("Vin", vout, freq).unwrap();
            let b = nominal.gain("Vin", vout, freq).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn patching_updates_cached_frequency_systems() {
        let (c, vout) = rc_lowpass();
        let cap = c.find_element("C").unwrap();
        let mna = Mna::new(&c);
        // Populate the per-frequency cache at nominal values...
        let g_nominal = mna.gain("Vin", vout, 1000.0).unwrap();
        assert!(mna.cached_system_count() >= 1);
        // ...then patch: the cached system must be updated, not stale.
        mna.scale_value(cap, 10.0);
        let g_patched = mna.gain("Vin", vout, 1000.0).unwrap();
        assert!(
            g_patched < g_nominal / 2.0,
            "10× capacitor must pull the 1 kHz gain well down ({g_nominal} -> {g_patched})"
        );
        let mut shifted = c.clone();
        shifted.scale_value(cap, 10.0);
        let reference = Mna::new(&shifted).gain("Vin", vout, 1000.0).unwrap();
        assert!((g_patched - reference).abs() < 1e-12);
    }

    #[test]
    fn zero_valued_element_is_singular_not_poisonous() {
        // Setting a resistor to exactly 0.0 makes its conductance infinite;
        // solving in that state must be a clean singular-matrix error, and
        // restoring a finite value must fully recover the engine (no NaN
        // left behind by the inf − inf delta).
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        c.voltage_source("Vin", vin, Circuit::GROUND, 10.0, 1.0);
        c.resistor("R1", vin, mid, 2.0e3);
        c.resistor("R2", mid, Circuit::GROUND, 3.0e3);
        let r1 = c.find_element("R1").unwrap();
        let mna = Mna::new(&c);
        let nominal = mna.solve_dc().unwrap().voltage(mid).re;
        mna.set_value(r1, 0.0);
        assert!(matches!(
            mna.solve_dc(),
            Err(AnalogError::SingularMatrix { .. })
        ));
        mna.set_value(r1, 2.0e3);
        let restored = mna.solve_dc().unwrap().voltage(mid).re;
        assert!(
            (restored - nominal).abs() < 1e-12,
            "engine must recover exactly after a through-zero patch: {restored} vs {nominal}"
        );
    }

    #[test]
    fn cache_eviction_is_lru_not_wholesale() {
        let (c, vout) = rc_lowpass();
        let mna = Mna::new(&c);
        // Fill well past capacity with distinct frequencies.
        let total = MAX_CACHED_SYSTEMS + 88;
        for i in 0..total {
            let _ = mna.gain("Vin", vout, 100.0 + i as f64).unwrap();
        }
        assert_eq!(
            mna.cached_system_count(),
            MAX_CACHED_SYSTEMS,
            "cache stays bounded at capacity"
        );
        // The most recent frequency is still warm: re-solving it must not
        // assemble a new system.
        let assemblies = mna.solver_stats().assemblies;
        let _ = mna.gain("Vin", vout, 100.0 + (total - 1) as f64).unwrap();
        assert_eq!(mna.solver_stats().assemblies, assemblies);
        // The oldest frequency was the LRU victim: re-solving it assembles.
        let _ = mna.gain("Vin", vout, 100.0).unwrap();
        assert_eq!(mna.solver_stats().assemblies, assemblies + 1);
        // A wholesale clear would have evicted the warm tail too; LRU keeps
        // it — every recent frequency re-solves without assembly.
        let assemblies = mna.solver_stats().assemblies;
        for i in (total - 100)..total {
            let _ = mna.gain("Vin", vout, 100.0 + i as f64).unwrap();
        }
        assert_eq!(
            mna.solver_stats().assemblies,
            assemblies,
            "the recent working set must survive eviction pressure"
        );
    }

    #[test]
    fn repeated_solves_reuse_assembly_and_factorization() {
        let (c, vout) = rc_lowpass();
        let mna = Mna::new(&c);
        for _ in 0..5 {
            let _ = mna.gain("Vin", vout, 1000.0).unwrap();
            let _ = mna.solve_ac(1000.0).unwrap();
        }
        let stats = mna.solver_stats();
        assert_eq!(stats.solves, 10);
        // One distinct frequency: one assembly, one factorization.
        assert_eq!(stats.assemblies, 1);
        assert_eq!(stats.factorizations, 1);
        assert_eq!(mna.cached_system_count(), 1);
        mna.clear_system_cache();
        assert_eq!(mna.cached_system_count(), 0);
        // Next solve re-assembles.
        let _ = mna.solve_ac(1000.0).unwrap();
        assert_eq!(mna.solver_stats().assemblies, 2);
    }
}
