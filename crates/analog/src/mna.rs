//! Modified nodal analysis (MNA): DC and AC small-signal solutions.
//!
//! The solver assembles the complex MNA matrix at a given complex frequency
//! `s = j·2πf` (or `s = 0` for DC) and solves it with dense LU.  Voltage
//! sources, VCVSs, op-amps and inductors contribute branch-current unknowns.

use std::collections::HashMap;
use std::f64::consts::TAU;

use crate::complex::Complex;
use crate::matrix::Matrix;
use crate::netlist::{Circuit, ElementId, ElementKind, NodeId, OpAmpModel};
use crate::AnalogError;

/// Which independent sources drive the circuit during a solve.
#[derive(Clone, Debug, PartialEq)]
pub enum Drive {
    /// Every source uses its own DC value (used by [`Mna::solve_dc`]).
    AllDc,
    /// Every source uses its own AC magnitude (used by [`Mna::solve_ac`]).
    AllAc,
    /// Only the named source is active, with the given magnitude; all other
    /// independent sources are zeroed.  This is how transfer functions are
    /// computed.
    Single {
        /// Name of the active source element.
        source: String,
        /// Magnitude applied to the source.
        magnitude: f64,
    },
}

/// The result of one MNA solve: node voltages and source/branch currents.
#[derive(Clone, Debug)]
pub struct Solution {
    voltages: Vec<Complex>,
    branch_currents: HashMap<ElementId, Complex>,
}

impl Solution {
    /// Complex voltage at `node` (ground reads as exactly zero).
    pub fn voltage(&self, node: NodeId) -> Complex {
        self.voltages[node.index()]
    }

    /// Voltage difference `V(a) − V(b)`.
    pub fn voltage_between(&self, a: NodeId, b: NodeId) -> Complex {
        self.voltage(a) - self.voltage(b)
    }

    /// Branch current of an element that carries a current unknown (voltage
    /// sources, VCVS, op-amps, inductors), if present.
    pub fn branch_current(&self, element: ElementId) -> Option<Complex> {
        self.branch_currents.get(&element).copied()
    }
}

/// The MNA engine bound to one circuit.
///
/// # Example
///
/// ```
/// use msatpg_analog::netlist::Circuit;
/// use msatpg_analog::mna::Mna;
///
/// // A simple RC low-pass: fc = 1/(2π·RC) ≈ 1.59 kHz
/// let mut c = Circuit::new();
/// let vin = c.node("vin");
/// let vout = c.node("vout");
/// c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
/// c.resistor("R", vin, vout, 1.0e3);
/// c.capacitor("C", vout, Circuit::GROUND, 100.0e-9);
/// let mna = Mna::new(&c);
/// let dc = mna.solve_dc().unwrap();
/// assert!((dc.voltage(vout).abs() - 0.0).abs() < 1e-9); // DC value of source is 0
/// let ac = mna.solve_ac(1.0).unwrap();
/// assert!((ac.voltage(vout).abs() - 1.0).abs() < 1e-3); // passband
/// ```
pub struct Mna<'a> {
    circuit: &'a Circuit,
    /// Elements that contribute a branch-current unknown, in matrix order.
    branch_elements: Vec<ElementId>,
}

impl<'a> Mna<'a> {
    /// Prepares the MNA engine for `circuit`.
    pub fn new(circuit: &'a Circuit) -> Self {
        let branch_elements = circuit
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e.kind,
                    ElementKind::VoltageSource { .. }
                        | ElementKind::Vcvs { .. }
                        | ElementKind::OpAmp { .. }
                        | ElementKind::Inductor { .. }
                )
            })
            .map(|(id, _)| id)
            .collect();
        Mna {
            circuit,
            branch_elements,
        }
    }

    /// Number of unknowns in the MNA system.
    pub fn unknown_count(&self) -> usize {
        (self.circuit.node_count() - 1) + self.branch_elements.len()
    }

    /// Solves the DC operating point (all capacitors open, inductors
    /// shorted, sources at their DC values).
    ///
    /// # Errors
    ///
    /// Returns an error if the MNA matrix is singular.
    pub fn solve_dc(&self) -> Result<Solution, AnalogError> {
        self.solve(Complex::ZERO, &Drive::AllDc)
    }

    /// Solves the AC small-signal response at `freq_hz` with every source at
    /// its AC magnitude.
    ///
    /// # Errors
    ///
    /// Returns an error if the MNA matrix is singular.
    pub fn solve_ac(&self, freq_hz: f64) -> Result<Solution, AnalogError> {
        self.solve(Complex::new(0.0, TAU * freq_hz), &Drive::AllAc)
    }

    /// Solves at `freq_hz` with only the named source active at the given
    /// magnitude (other sources are zeroed); `freq_hz = 0` performs a DC
    /// solve.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::UnknownElement`] if the source does not exist,
    /// or a singular-matrix error.
    pub fn solve_single_source(
        &self,
        source: &str,
        magnitude: f64,
        freq_hz: f64,
    ) -> Result<Solution, AnalogError> {
        if self.circuit.find_element(source).is_none() {
            return Err(AnalogError::UnknownElement {
                name: source.to_owned(),
            });
        }
        let s = Complex::new(0.0, TAU * freq_hz);
        self.solve(
            s,
            &Drive::Single {
                source: source.to_owned(),
                magnitude,
            },
        )
    }

    /// Complex transfer function `V(output) / stimulus` from the named
    /// source to `output` at `freq_hz` (unit-magnitude stimulus).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Mna::solve_single_source`].
    pub fn transfer(
        &self,
        source: &str,
        output: NodeId,
        freq_hz: f64,
    ) -> Result<Complex, AnalogError> {
        let sol = self.solve_single_source(source, 1.0, freq_hz)?;
        Ok(sol.voltage(output))
    }

    /// Gain magnitude `|V(output) / stimulus|` at `freq_hz`.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Mna::transfer`].
    pub fn gain(&self, source: &str, output: NodeId, freq_hz: f64) -> Result<f64, AnalogError> {
        Ok(self.transfer(source, output, freq_hz)?.abs())
    }

    fn source_value(&self, id: ElementId, kind: &ElementKind, drive: &Drive) -> f64 {
        let (dc, ac) = match *kind {
            ElementKind::VoltageSource { dc, ac } | ElementKind::CurrentSource { dc, ac } => {
                (dc, ac)
            }
            _ => return 0.0,
        };
        match drive {
            Drive::AllDc => dc,
            Drive::AllAc => ac,
            Drive::Single { source, magnitude } => {
                if self.circuit.element(id).name == *source {
                    *magnitude
                } else {
                    0.0
                }
            }
        }
    }

    fn solve(&self, s: Complex, drive: &Drive) -> Result<Solution, AnalogError> {
        let n_nodes = self.circuit.node_count() - 1; // excluding ground
        let n = n_nodes + self.branch_elements.len();
        if n == 0 {
            return Ok(Solution {
                voltages: vec![Complex::ZERO; 1],
                branch_currents: HashMap::new(),
            });
        }
        let mut a = Matrix::zeros(n, n);
        let mut b = vec![Complex::ZERO; n];

        // Map: node -> row/column (ground maps to None).
        let row = |node: NodeId| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.index() - 1)
            }
        };
        let branch_row: HashMap<ElementId, usize> = self
            .branch_elements
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, n_nodes + i))
            .collect();

        let stamp_admittance = |a: &mut Matrix, na: NodeId, nb: NodeId, y: Complex| {
            if let Some(i) = row(na) {
                a[(i, i)] += y;
                if let Some(j) = row(nb) {
                    a[(i, j)] -= y;
                }
            }
            if let Some(j) = row(nb) {
                a[(j, j)] += y;
                if let Some(i) = row(na) {
                    a[(j, i)] -= y;
                }
            }
        };

        for (id, e) in self.circuit.iter() {
            match e.kind {
                ElementKind::Resistor { value } => {
                    let y = Complex::from_real(1.0 / value);
                    stamp_admittance(&mut a, e.nodes[0], e.nodes[1], y);
                }
                ElementKind::Capacitor { value } => {
                    let y = s * value;
                    stamp_admittance(&mut a, e.nodes[0], e.nodes[1], y);
                }
                ElementKind::Inductor { value } => {
                    // Branch formulation: V(a) − V(b) − s·L·I = 0
                    let k = branch_row[&id];
                    let (na, nb) = (e.nodes[0], e.nodes[1]);
                    if let Some(i) = row(na) {
                        a[(i, k)] += Complex::ONE;
                        a[(k, i)] += Complex::ONE;
                    }
                    if let Some(j) = row(nb) {
                        a[(j, k)] -= Complex::ONE;
                        a[(k, j)] -= Complex::ONE;
                    }
                    a[(k, k)] -= s * value;
                }
                ElementKind::VoltageSource { .. } => {
                    let k = branch_row[&id];
                    let (np, nn) = (e.nodes[0], e.nodes[1]);
                    if let Some(i) = row(np) {
                        a[(i, k)] += Complex::ONE;
                        a[(k, i)] += Complex::ONE;
                    }
                    if let Some(j) = row(nn) {
                        a[(j, k)] -= Complex::ONE;
                        a[(k, j)] -= Complex::ONE;
                    }
                    b[k] = Complex::from_real(self.source_value(id, &e.kind, drive));
                }
                ElementKind::CurrentSource { .. } => {
                    let value = self.source_value(id, &e.kind, drive);
                    let (np, nn) = (e.nodes[0], e.nodes[1]);
                    if let Some(i) = row(np) {
                        b[i] -= Complex::from_real(value);
                    }
                    if let Some(j) = row(nn) {
                        b[j] += Complex::from_real(value);
                    }
                }
                ElementKind::Vcvs { gain } => {
                    // V(p) − V(n) − gain·(V(cp) − V(cn)) = 0
                    let k = branch_row[&id];
                    let (p, nn, cp, cn) = (e.nodes[0], e.nodes[1], e.nodes[2], e.nodes[3]);
                    if let Some(i) = row(p) {
                        a[(i, k)] += Complex::ONE;
                        a[(k, i)] += Complex::ONE;
                    }
                    if let Some(j) = row(nn) {
                        a[(j, k)] -= Complex::ONE;
                        a[(k, j)] -= Complex::ONE;
                    }
                    if let Some(i) = row(cp) {
                        a[(k, i)] -= Complex::from_real(gain);
                    }
                    if let Some(j) = row(cn) {
                        a[(k, j)] += Complex::from_real(gain);
                    }
                }
                ElementKind::OpAmp { model } => {
                    // Output current is the branch unknown, injected at `out`.
                    let k = branch_row[&id];
                    let (inp, inn, out) = (e.nodes[0], e.nodes[1], e.nodes[2]);
                    if let Some(o) = row(out) {
                        a[(o, k)] += Complex::ONE;
                    }
                    match model {
                        OpAmpModel::Ideal => {
                            // Constraint: V(in+) − V(in−) = 0
                            if let Some(i) = row(inp) {
                                a[(k, i)] += Complex::ONE;
                            }
                            if let Some(j) = row(inn) {
                                a[(k, j)] -= Complex::ONE;
                            }
                        }
                        OpAmpModel::FiniteGain { a0, pole_hz } => {
                            // V(out) = A(s)·(V(in+) − V(in−)),
                            // A(s) = a0 / (1 + s/(2π·pole_hz))
                            let denom = Complex::ONE + s / (TAU * pole_hz);
                            let gain = Complex::from_real(a0) / denom;
                            if let Some(o) = row(out) {
                                a[(k, o)] += Complex::ONE;
                            }
                            if let Some(i) = row(inp) {
                                a[(k, i)] -= gain;
                            }
                            if let Some(j) = row(inn) {
                                a[(k, j)] += gain;
                            }
                        }
                    }
                }
            }
        }

        let x = a.solve(&b)?;
        let mut voltages = vec![Complex::ZERO; self.circuit.node_count()];
        for node_idx in 1..self.circuit.node_count() {
            voltages[node_idx] = x[node_idx - 1];
        }
        let branch_currents = self
            .branch_elements
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, x[n_nodes + i]))
            .collect();
        Ok(Solution {
            voltages,
            branch_currents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::OpAmpModel;

    fn rc_lowpass() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 1.0, 1.0);
        c.resistor("R", vin, vout, 1.0e3);
        c.capacitor("C", vout, Circuit::GROUND, 159.154943e-9); // fc ≈ 1 kHz
        (c, vout)
    }

    #[test]
    fn voltage_divider_dc() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let mid = c.node("mid");
        c.voltage_source("Vin", vin, Circuit::GROUND, 10.0, 1.0);
        c.resistor("R1", vin, mid, 2.0e3);
        c.resistor("R2", mid, Circuit::GROUND, 3.0e3);
        let sol = Mna::new(&c).solve_dc().unwrap();
        assert!((sol.voltage(mid).re - 6.0).abs() < 1e-9);
        // Source current: 10 V across 5 kΩ = 2 mA flowing out of + terminal.
        let i = sol
            .branch_current(c.find_element("Vin").unwrap())
            .unwrap();
        assert!((i.re.abs() - 2.0e-3).abs() < 1e-9);
    }

    #[test]
    fn rc_lowpass_cutoff() {
        let (c, vout) = rc_lowpass();
        let mna = Mna::new(&c);
        // Well below cutoff: gain ≈ 1.  At cutoff: 1/sqrt(2).  Well above: small.
        let g_low = mna.gain("Vin", vout, 1.0).unwrap();
        let g_fc = mna.gain("Vin", vout, 1000.0).unwrap();
        let g_high = mna.gain("Vin", vout, 100_000.0).unwrap();
        assert!((g_low - 1.0).abs() < 1e-3);
        assert!((g_fc - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!(g_high < 0.02);
    }

    #[test]
    fn inverting_amplifier_with_ideal_opamp() {
        // Gain = -Rf/Rin = -10
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vminus = c.node("vminus");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("Rin", vin, vminus, 1.0e3);
        c.resistor("Rf", vminus, vout, 10.0e3);
        c.opamp("A1", Circuit::GROUND, vminus, vout, OpAmpModel::Ideal);
        let mna = Mna::new(&c);
        let h = mna.transfer("Vin", vout, 100.0).unwrap();
        assert!((h.re + 10.0).abs() < 1e-6);
        assert!(h.im.abs() < 1e-9);
    }

    #[test]
    fn inverting_amplifier_with_finite_gain_opamp() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vminus = c.node("vminus");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("Rin", vin, vminus, 1.0e3);
        c.resistor("Rf", vminus, vout, 10.0e3);
        c.opamp(
            "A1",
            Circuit::GROUND,
            vminus,
            vout,
            OpAmpModel::FiniteGain {
                a0: 1.0e6,
                pole_hz: 10.0,
            },
        );
        let mna = Mna::new(&c);
        let h = mna.transfer("Vin", vout, 1.0).unwrap();
        // Finite but large gain: very close to -10.
        assert!((h.abs() - 10.0).abs() < 0.01);
    }

    #[test]
    fn vcvs_gain_stage() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.vcvs("E1", vout, Circuit::GROUND, vin, Circuit::GROUND, 5.0);
        c.resistor("Rload", vout, Circuit::GROUND, 1.0e3);
        let mna = Mna::new(&c);
        let h = mna.transfer("Vin", vout, 50.0).unwrap();
        assert!((h.re - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rl_highpass_behaviour() {
        // Series R from source, inductor to ground: V(out) rises with f.
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R", vin, vout, 1.0e3);
        c.inductor("L", vout, Circuit::GROUND, 0.1);
        let mna = Mna::new(&c);
        let g_low = mna.gain("Vin", vout, 10.0).unwrap();
        let g_high = mna.gain("Vin", vout, 100_000.0).unwrap();
        assert!(g_low < 0.01);
        assert!(g_high > 0.98);
        // DC: inductor is a short.
        let dc = mna.solve_dc().unwrap();
        assert!(dc.voltage(vout).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n1 = c.node("n1");
        c.current_source("I1", Circuit::GROUND, n1, 1.0e-3, 1.0e-3);
        c.resistor("R1", n1, Circuit::GROUND, 1.0e3);
        let sol = Mna::new(&c).solve_dc().unwrap();
        // 1 mA into 1 kΩ = 1 V.
        assert!((sol.voltage(n1).re - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_source_drive_zeroes_other_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let bnode = c.node("b");
        c.voltage_source("V1", a, Circuit::GROUND, 1.0, 1.0);
        c.voltage_source("V2", bnode, Circuit::GROUND, 1.0, 1.0);
        c.resistor("R1", a, bnode, 1.0e3);
        let mna = Mna::new(&c);
        let sol = mna.solve_single_source("V1", 2.0, 0.0).unwrap();
        assert!((sol.voltage(a).re - 2.0).abs() < 1e-12);
        assert!(sol.voltage(bnode).abs() < 1e-12);
        assert!(mna.solve_single_source("nope", 1.0, 0.0).is_err());
    }

    #[test]
    fn unknown_count_matches_structure() {
        let (c, _) = rc_lowpass();
        let mna = Mna::new(&c);
        // 2 non-ground nodes + 1 voltage-source branch.
        assert_eq!(mna.unknown_count(), 3);
    }
}
