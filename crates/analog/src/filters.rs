//! The paper's analog circuits: the second-order band-pass filter (Fig. 2),
//! the fifth-order Chebyshev low-pass filter (Fig. 7) and the state-variable
//! filter of the discrete validation board (Fig. 8).
//!
//! The original schematics give component designators but not values; the
//! builders below use op-amp filter topologies with the same element lists
//! and sensible values (band centers / corners near 1 kHz), which preserves
//! the dependence structure that the paper's tables exercise.

use crate::netlist::{Circuit, NodeId, OpAmpModel};
use crate::params::{ParameterKind, ParameterSpec};
use crate::response::SweepConfig;

/// A circuit bundled with its measurable parameters and its analog primary
/// input/output — everything the mixed-signal ATPG needs to know about an
/// analog block.
#[derive(Clone, Debug)]
pub struct FilterCircuit {
    name: String,
    circuit: Circuit,
    parameters: Vec<ParameterSpec>,
    input_source: String,
    output: String,
}

impl FilterCircuit {
    /// Human-readable name of the filter.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying circuit netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Mutable access to the netlist (for fault injection).
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }

    /// The measurable parameters of this filter.
    pub fn parameters(&self) -> &[ParameterSpec] {
        &self.parameters
    }

    /// Name of the driving source element (the analog primary input).
    pub fn input_source(&self) -> &str {
        &self.input_source
    }

    /// Name of the main output node (the node feeding the conversion block).
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Resolves the main output node id.
    ///
    /// # Panics
    ///
    /// Panics if the output node name is not present in the circuit (cannot
    /// happen for the built-in filters).
    pub fn output_node(&self) -> NodeId {
        self.circuit
            .find_node(&self.output)
            .expect("filter output node exists")
    }
}

fn audio_sweep() -> SweepConfig {
    SweepConfig {
        start_hz: 1.0,
        stop_hz: 1.0e6,
        points_per_decade: 30,
    }
}

/// The second-order band-pass filter of Figure 2 (Example 1), built as a
/// Tow-Thomas biquad with elements `{R1, R2, R3, R4, Rg, Rd, C1, C2}`.
///
/// Nominal design: center frequency ≈ 4.2 kHz, center-frequency gain
/// `A1 = Rd/Rg ≈ 3.2`, measured parameters `{A1, A2, f0, fc1, fc2}` exactly
/// as in the paper (A2 is the gain at 10 kHz, on the upper skirt of the
/// response, so that every element influences it as in the paper's
/// Equation-1 matrix).
pub fn second_order_band_pass() -> FilterCircuit {
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let s1 = c.node("s1");
    let v1 = c.node("v1");
    let s2 = c.node("s2");
    let v2 = c.node("v2");
    let s3 = c.node("s3");
    let v3 = c.node("v3");
    c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
    // Stage 1: lossy inverting integrator (band-pass output at v1).
    c.resistor("Rg", vin, s1, 10.0e3);
    c.resistor("Rd", s1, v1, 31.83e3);
    c.capacitor("C1", s1, v1, 2.4e-9);
    c.opamp("A1op", Circuit::GROUND, s1, v1, OpAmpModel::Ideal);
    // Stage 2: inverting integrator.
    c.resistor("R2", v1, s2, 15.915e3);
    c.capacitor("C2", s2, v2, 2.4e-9);
    c.opamp("A2op", Circuit::GROUND, s2, v2, OpAmpModel::Ideal);
    // Stage 3: unity inverter closing the loop.
    c.resistor("R3", v2, s3, 15.915e3);
    c.resistor("R4", s3, v3, 15.915e3);
    c.opamp("A3op", Circuit::GROUND, s3, v3, OpAmpModel::Ideal);
    // Loop closure back into the summing node.
    c.resistor("R1", v3, s1, 15.915e3);

    let sweep = audio_sweep();
    let parameters = vec![
        ParameterSpec::new("A1", ParameterKind::MaxGain, "Vin", "v1").with_sweep(sweep),
        ParameterSpec::new("A2", ParameterKind::AcGain { freq_hz: 10.0e3 }, "Vin", "v1")
            .with_sweep(sweep),
        ParameterSpec::new("f0", ParameterKind::CenterFrequency, "Vin", "v1").with_sweep(sweep),
        ParameterSpec::new("fc1", ParameterKind::LowCutoff, "Vin", "v1").with_sweep(sweep),
        ParameterSpec::new("fc2", ParameterKind::HighCutoff, "Vin", "v1").with_sweep(sweep),
    ];
    FilterCircuit {
        name: "second-order band-pass (Fig. 2)".to_owned(),
        circuit: c,
        parameters,
        input_source: "Vin".to_owned(),
        output: "v1".to_owned(),
    }
}

/// The fifth-order Chebyshev low-pass filter of Figure 7 (Example 3).
///
/// Built as a cascade of a first-order inverting section, two Sallen-Key
/// second-order sections (the higher-Q section last) and an output gain
/// stage, preceded by an input attenuator — 10 resistors and 5 capacitors.
/// Corner frequency ≈ 1 kHz.
///
/// Measured parameters: `Adc`, `fc` (high cut-off) and five AC gains
/// `A1..A5` spread across the passband and the band edge.
pub fn fifth_order_chebyshev() -> FilterCircuit {
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let va = c.node("va"); // after input divider
    let m1 = c.node("m1");
    let vb = c.node("vb"); // after 1st-order section
    let x1 = c.node("x1");
    let y1 = c.node("y1");
    let vc = c.node("vc"); // after first Sallen-Key section
    let x2 = c.node("x2");
    let y2 = c.node("y2");
    let vd = c.node("vd"); // after second Sallen-Key section
    let m4 = c.node("m4");
    let vout = c.node("vout");

    c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
    // Input attenuator.
    c.resistor("R9", vin, va, 10.0e3);
    c.resistor("R10", va, Circuit::GROUND, 10.0e3);
    // First-order inverting low-pass: real pole near 290 Hz, DC gain −1.
    c.resistor("R1", va, m1, 27.0e3);
    c.resistor("R2", m1, vb, 27.0e3);
    c.capacitor("C1", m1, vb, 20.0e-9);
    c.opamp("A1op", Circuit::GROUND, m1, vb, OpAmpModel::Ideal);
    // Sallen-Key section, ω0 ≈ 2π·655 Hz, Q ≈ 1.4 (unity gain buffer).
    c.resistor("R3", vb, x1, 17.0e3);
    c.resistor("R4", x1, y1, 17.0e3);
    c.capacitor("C3", y1, Circuit::GROUND, 5.0e-9);
    c.capacitor("C2", x1, vc, 40.0e-9);
    c.opamp("A2op", y1, vc, vc, OpAmpModel::Ideal);
    // Sallen-Key section, ω0 ≈ 2π·994 Hz, Q ≈ 5.6 (unity gain buffer).
    c.resistor("R5", vc, x2, 14.4e3);
    c.resistor("R6", x2, y2, 14.4e3);
    c.capacitor("C5", y2, Circuit::GROUND, 1.0e-9);
    c.capacitor("C4", x2, vd, 124.0e-9);
    c.opamp("A3op", y2, vd, vd, OpAmpModel::Ideal);
    // Output inverting gain stage, gain −2.
    c.resistor("R7", vd, m4, 10.0e3);
    c.resistor("R8", m4, vout, 20.0e3);
    c.opamp("A4op", Circuit::GROUND, m4, vout, OpAmpModel::Ideal);

    let sweep = audio_sweep();
    let ac = |name: &str, f: f64| {
        ParameterSpec::new(name, ParameterKind::AcGain { freq_hz: f }, "Vin", "vout")
            .with_sweep(sweep)
    };
    let parameters = vec![
        ParameterSpec::new("Adc", ParameterKind::DcGain, "Vin", "vout").with_sweep(sweep),
        ParameterSpec::new("fc", ParameterKind::HighCutoff, "Vin", "vout").with_sweep(sweep),
        ac("A1", 200.0),
        ac("A2", 400.0),
        ac("A3", 700.0),
        ac("A4", 900.0),
        ac("A5", 980.0),
    ];
    FilterCircuit {
        name: "fifth-order Chebyshev low-pass (Fig. 7)".to_owned(),
        circuit: c,
        parameters,
        input_source: "Vin".to_owned(),
        output: "vout".to_owned(),
    }
}

/// The state-variable filter of the discrete validation board (Fig. 8),
/// with elements `{R, R1..R9, C1, C2}` and the three simultaneous outputs
/// `V1` (high-pass), `V2` (band-pass) and `V3` (low-pass), plus the divided
/// output `V3'`.
///
/// Measured parameters follow Table 8 of the paper: DC gains at the low-pass
/// outputs, 10 kHz gains at the high-pass/band-pass outputs, the high-pass
/// plateau gain and the corner frequency of `V1`.
pub fn state_variable_filter() -> FilterCircuit {
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let s1 = c.node("s1");
    let v1 = c.node("v1"); // high-pass
    let s2 = c.node("s2");
    let v2 = c.node("v2"); // band-pass (inverted)
    let s4 = c.node("s4");
    let v2b = c.node("v2b"); // re-inverted band-pass
    let s3 = c.node("s3");
    let v3 = c.node("v3"); // low-pass
    let v3p = c.node("v3p"); // divided low-pass output

    c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
    // Summing amplifier A1 (output V1).
    c.resistor("R", vin, s1, 10.0e3);
    c.resistor("R1", v2b, s1, 10.0e3);
    c.resistor("R2", v3, s1, 10.0e3);
    c.resistor("R3", s1, v1, 10.0e3);
    c.opamp("A1op", Circuit::GROUND, s1, v1, OpAmpModel::Ideal);
    // Integrator A2 (output V2).
    c.resistor("R8", v1, s2, 15.9e3);
    c.capacitor("C1", s2, v2, 10.0e-9);
    c.opamp("A2op", Circuit::GROUND, s2, v2, OpAmpModel::Ideal);
    // Inverter A4 in the band-pass feedback path.
    c.resistor("R6", v2, s4, 10.0e3);
    c.resistor("R7", s4, v2b, 10.0e3);
    c.opamp("A4op", Circuit::GROUND, s4, v2b, OpAmpModel::Ideal);
    // Integrator A3 (output V3).
    c.resistor("R9", v2, s3, 15.9e3);
    c.capacitor("C2", s3, v3, 10.0e-9);
    c.opamp("A3op", Circuit::GROUND, s3, v3, OpAmpModel::Ideal);
    // Output divider (the V3' observation point of Table 8).
    c.resistor("R4", v3, v3p, 10.0e3);
    c.resistor("R5", v3p, Circuit::GROUND, 10.0e3);

    let sweep = audio_sweep();
    let parameters = vec![
        // High-pass plateau gain (stands in for the paper's A1dc, whose
        // nominal value would be zero for an ideal high-pass output).
        ParameterSpec::new(
            "A1hf",
            ParameterKind::AcGain { freq_hz: 100.0e3 },
            "Vin",
            "v1",
        )
        .with_sweep(sweep),
        ParameterSpec::new("A2max", ParameterKind::MaxGain, "Vin", "v2").with_sweep(sweep),
        ParameterSpec::new("A3dc", ParameterKind::DcGain, "Vin", "v3").with_sweep(sweep),
        ParameterSpec::new("A3'dc", ParameterKind::DcGain, "Vin", "v3p").with_sweep(sweep),
        ParameterSpec::new(
            "A1_10k",
            ParameterKind::AcGain { freq_hz: 10.0e3 },
            "Vin",
            "v1",
        )
        .with_sweep(sweep),
        ParameterSpec::new(
            "A2_10k",
            ParameterKind::AcGain { freq_hz: 10.0e3 },
            "Vin",
            "v2",
        )
        .with_sweep(sweep),
        ParameterSpec::new("fh1", ParameterKind::LowCutoff, "Vin", "v1").with_sweep(sweep),
    ];
    FilterCircuit {
        name: "state-variable filter (Fig. 8)".to_owned(),
        circuit: c,
        parameters,
        input_source: "Vin".to_owned(),
        output: "v3".to_owned(),
    }
}

/// A plain first-order RC low-pass filter (used as a small example and in
/// tests), with the cut-off at `fc_hz`.
pub fn rc_low_pass(fc_hz: f64) -> FilterCircuit {
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let vout = c.node("vout");
    c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
    let r = 10.0e3;
    let cap = 1.0 / (std::f64::consts::TAU * fc_hz * r);
    c.resistor("R1", vin, vout, r);
    c.capacitor("C1", vout, Circuit::GROUND, cap);
    let parameters = vec![
        ParameterSpec::new("Adc", ParameterKind::DcGain, "Vin", "vout"),
        ParameterSpec::new("fh", ParameterKind::HighCutoff, "Vin", "vout"),
    ];
    FilterCircuit {
        name: format!("first-order RC low-pass ({fc_hz} Hz)"),
        circuit: c,
        parameters,
        input_source: "Vin".to_owned(),
        output: "vout".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::measure;
    use crate::response::ResponseAnalyzer;

    #[test]
    fn band_pass_nominal_design() {
        let f = second_order_band_pass();
        assert!(f.circuit().validate().is_ok());
        assert_eq!(f.circuit().passive_elements().len(), 8);
        let an =
            ResponseAnalyzer::new(f.circuit(), "Vin", f.output_node()).with_sweep(audio_sweep());
        let (f0, gain) = an.peak().unwrap();
        assert!((f0 - 4168.0).abs() / 4168.0 < 0.05, "center frequency {f0}");
        // Center gain = Rd / Rg ≈ 3.18.
        assert!((gain - 3.183).abs() < 0.05, "center gain {gain}");
        let fl = an.low_cutoff().unwrap();
        let fh = an.high_cutoff().unwrap();
        assert!(fl < f0 && fh > f0);
    }

    #[test]
    fn band_pass_parameters_measure() {
        let f = second_order_band_pass();
        for p in f.parameters() {
            let v = measure(f.circuit(), p).unwrap();
            assert!(v.is_finite() && v > 0.0, "{} = {v}", p.name);
        }
    }

    #[test]
    fn chebyshev_is_a_low_pass_near_1khz() {
        let f = fifth_order_chebyshev();
        assert!(f.circuit().validate().is_ok());
        let an =
            ResponseAnalyzer::new(f.circuit(), "Vin", f.output_node()).with_sweep(audio_sweep());
        let dc = an.dc_gain().unwrap();
        assert!(dc > 0.5, "passband gain {dc}");
        let g5k = an.gain_at(5.0e3).unwrap();
        assert!(
            g5k < dc / 10.0,
            "5 kHz must be well into the stopband (dc {dc}, 5 kHz {g5k})"
        );
        let fc = an.high_cutoff().unwrap();
        assert!(
            fc > 400.0 && fc < 2000.0,
            "corner frequency {fc} should be near 1 kHz"
        );
        // Fifth-order roll-off: two decades above the corner the gain is tiny.
        let g100k = an.gain_at(100.0e3).unwrap();
        assert!(g100k < 1e-4, "stopband gain {g100k}");
    }

    #[test]
    fn state_variable_filter_has_three_characteristic_outputs() {
        let f = state_variable_filter();
        assert!(f.circuit().validate().is_ok());
        assert_eq!(f.circuit().passive_elements().len(), 12);
        let c = f.circuit();
        let v1 = c.find_node("v1").unwrap();
        let v2 = c.find_node("v2").unwrap();
        let v3 = c.find_node("v3").unwrap();
        let hp = ResponseAnalyzer::new(c, "Vin", v1).with_sweep(audio_sweep());
        let bp = ResponseAnalyzer::new(c, "Vin", v2).with_sweep(audio_sweep());
        let lp = ResponseAnalyzer::new(c, "Vin", v3).with_sweep(audio_sweep());
        // High-pass: small at DC, ≈1 at high frequency.
        assert!(hp.gain_at(1.0).unwrap() < 0.01);
        assert!((hp.gain_at(100.0e3).unwrap() - 1.0).abs() < 0.05);
        // Low-pass: ≈1 at DC, small at high frequency.
        assert!((lp.dc_gain().unwrap() - 1.0).abs() < 0.05);
        assert!(lp.gain_at(100.0e3).unwrap() < 0.01);
        // Band-pass: peaks near 1 kHz.
        let (f0, _) = bp.peak().unwrap();
        assert!(f0 > 500.0 && f0 < 2000.0, "band-pass center {f0}");
    }

    #[test]
    fn state_variable_parameters_measure() {
        let f = state_variable_filter();
        for p in f.parameters() {
            let v = measure(f.circuit(), p).unwrap();
            assert!(v.is_finite(), "{} must measure", p.name);
        }
    }

    #[test]
    fn rc_low_pass_builder() {
        let f = rc_low_pass(2000.0);
        let fh = measure(f.circuit(), &f.parameters()[1]).unwrap();
        assert!((fh - 2000.0).abs() / 2000.0 < 0.02);
        assert!(f.name().contains("2000"));
        assert_eq!(f.input_source(), "Vin");
        assert_eq!(f.output(), "vout");
    }
}
