//! Sensitivity and worst-case element-deviation analysis (§2.1 of the paper).
//!
//! For every pair *(parameter T, element x)* the analysis computes the
//! smallest relative deviation of *x* that is guaranteed to push *T* out of
//! its tolerance box — the **element deviation** (E.D.) reported in
//! Example 1, Table 3 and Table 8 of the paper.  In worst-case mode, all
//! other (fault-free) elements are allowed to sit anywhere inside their own
//! tolerance, partially masking the fault, exactly as the paper's
//! "worst element tolerance" computation.

use msatpg_exec::{ExecPolicy, WorkerPool};

use crate::mna::Mna;
use crate::netlist::{Circuit, ElementId};
use crate::params::{measure_with_mna, ParameterSpec};
use crate::tolerance::{relative_deviation, Tolerance};
use crate::AnalogError;

/// Normalized sensitivity `S = (∂T/T) / (∂x/x)` of a parameter with respect
/// to an element value, estimated by central finite differences.
///
/// # Errors
///
/// Propagates measurement errors.
pub fn normalized_sensitivity(
    circuit: &Circuit,
    spec: &ParameterSpec,
    element: ElementId,
    step: f64,
) -> Result<f64, AnalogError> {
    let mna = Mna::new(circuit);
    normalized_sensitivity_with_mna(&mna, spec, element, step)
}

/// Like [`normalized_sensitivity`], but probes an existing MNA engine by
/// patching the element value up and down instead of cloning and re-stamping
/// the circuit twice.  The engine is restored to its current value on
/// return.
///
/// # Errors
///
/// Propagates measurement errors.
pub fn normalized_sensitivity_with_mna(
    mna: &Mna<'_>,
    spec: &ParameterSpec,
    element: ElementId,
    step: f64,
) -> Result<f64, AnalogError> {
    let nominal = measure_with_mna(mna, spec)?;
    if nominal == 0.0 {
        return Ok(0.0);
    }
    let base = mna.value(element);
    mna.set_value(element, base * (1.0 + step));
    let t_up = measure_with_mna(mna, spec);
    mna.set_value(element, base * (1.0 - step));
    let t_down = measure_with_mna(mna, spec);
    mna.set_value(element, base);
    Ok(((t_up? - t_down?) / nominal) / (2.0 * step))
}

/// One row of a [`DeviationReport`]: the detectable deviation of one element
/// through one parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviationRow {
    /// Parameter name.
    pub parameter: String,
    /// Element name.
    pub element: String,
    /// Element id in the analyzed circuit.
    pub element_id: ElementId,
    /// Smallest guaranteed-detectable relative deviation (fraction), or
    /// `None` when no deviation up to the search cap moves the parameter out
    /// of its tolerance box (the `0` / dashed entries of the paper's tables).
    pub detectable_deviation: Option<f64>,
}

/// Result of a [`WorstCaseAnalysis`] run: the full parameter × element
/// deviation matrix.
#[derive(Clone, Debug, Default)]
pub struct DeviationReport {
    rows: Vec<DeviationRow>,
    parameters: Vec<String>,
    elements: Vec<(ElementId, String)>,
}

impl DeviationReport {
    /// All rows (one per parameter × element pair).
    pub fn rows(&self) -> &[DeviationRow] {
        &self.rows
    }

    /// Parameter names, in analysis order.
    pub fn parameters(&self) -> &[String] {
        &self.parameters
    }

    /// Analyzed elements as `(id, name)` pairs.
    pub fn elements(&self) -> &[(ElementId, String)] {
        &self.elements
    }

    /// Looks up the detectable deviation for a `(parameter, element)` pair.
    pub fn deviation(&self, parameter: &str, element: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.parameter == parameter && r.element == element)
            .and_then(|r| r.detectable_deviation)
    }

    /// The element coverage: for each element, the minimum detectable
    /// deviation over all parameters (`None` if no parameter detects it).
    pub fn element_coverage(&self) -> Vec<(String, Option<f64>)> {
        self.elements
            .iter()
            .map(|(_, name)| {
                let best = self
                    .rows
                    .iter()
                    .filter(|r| &r.element == name)
                    .filter_map(|r| r.detectable_deviation)
                    .fold(f64::INFINITY, f64::min);
                (
                    name.clone(),
                    if best.is_finite() { Some(best) } else { None },
                )
            })
            .collect()
    }

    /// Renders the matrix as a plain-text table with deviations in percent
    /// (the layout of Equation 1 / Table 3 in the paper).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<8}", ""));
        for (_, e) in &self.elements {
            out.push_str(&format!("{e:>9}"));
        }
        out.push('\n');
        for p in &self.parameters {
            out.push_str(&format!("{p:<8}"));
            for (_, e) in &self.elements {
                let cell = match self.deviation(p, e) {
                    Some(d) => format!("{:.1}", d * 100.0),
                    None => "-".to_owned(),
                };
                out.push_str(&format!("{cell:>9}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Worst-case element-deviation analysis.
///
/// # Example
///
/// ```
/// use msatpg_analog::filters;
/// use msatpg_analog::sensitivity::WorstCaseAnalysis;
///
/// let filter = filters::second_order_band_pass();
/// let report = WorstCaseAnalysis::new(filter.circuit(), filter.parameters())
///     .with_parameter_tolerance(0.05)
///     .run()
///     .unwrap();
/// // The center-frequency gain A1 of the Tow-Thomas band-pass depends only
/// // on Rd and Rg.
/// assert!(report.deviation("A1", "Rd").is_some());
/// assert!(report.deviation("A1", "R1").is_none());
/// ```
pub struct WorstCaseAnalysis<'a> {
    circuit: &'a Circuit,
    parameters: &'a [ParameterSpec],
    parameter_tolerance: Tolerance,
    element_tolerance: Tolerance,
    worst_case: bool,
    max_deviation: f64,
    elements: Option<Vec<ElementId>>,
    policy: ExecPolicy,
}

impl<'a> WorstCaseAnalysis<'a> {
    /// Creates an analysis of `circuit` over the given parameter set with the
    /// paper's defaults (±5 % parameter and element tolerances, worst-case
    /// masking enabled, deviations searched up to 500 %).
    pub fn new(circuit: &'a Circuit, parameters: &'a [ParameterSpec]) -> Self {
        WorstCaseAnalysis {
            circuit,
            parameters,
            parameter_tolerance: Tolerance::default(),
            element_tolerance: Tolerance::default(),
            worst_case: true,
            max_deviation: 5.0,
            elements: None,
            policy: ExecPolicy::Serial,
        }
    }

    /// Sets the execution policy: deviation rows are independent, so they
    /// are distributed over the worker pool.  Each unit of work probes its
    /// own freshly stamped MNA engine, which makes the report a pure
    /// function of the inputs — `Threads(n)` output is byte-identical to
    /// `Serial` for every `n` (asserted by the determinism suite).
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the parameter tolerance box (fraction, e.g. `0.05`).
    pub fn with_parameter_tolerance(mut self, fraction: f64) -> Self {
        self.parameter_tolerance = Tolerance::from_fraction(fraction);
        self
    }

    /// Sets the fault-free element tolerance used for worst-case masking.
    pub fn with_element_tolerance(mut self, fraction: f64) -> Self {
        self.element_tolerance = Tolerance::from_fraction(fraction);
        self
    }

    /// Enables or disables worst-case masking by fault-free elements
    /// (disabled = "nominal" mode, all other elements at nominal value).
    pub fn with_worst_case(mut self, enabled: bool) -> Self {
        self.worst_case = enabled;
        self
    }

    /// Sets the largest relative deviation searched (fraction).
    pub fn with_max_deviation(mut self, fraction: f64) -> Self {
        self.max_deviation = fraction;
        self
    }

    /// Restricts the analysis to a subset of elements (default: all passive
    /// elements).
    pub fn with_elements(mut self, elements: Vec<ElementId>) -> Self {
        self.elements = Some(elements);
        self
    }

    /// Runs the analysis.
    ///
    /// Each unit of work — one element's sensitivity, one element's
    /// threshold search — probes its own freshly stamped MNA engine
    /// ([`Mna::new`] is one linear pass; the thousands of solves a row
    /// performs dwarf it), patching the faulty element's value and reusing
    /// the engine's per-frequency factorization cache across the bracketing
    /// and bisection probes.  Rows are independent, so they run on the
    /// worker pool under the configured [`ExecPolicy`] and are merged back
    /// in `(parameter, element)` order; because every unit starts from a
    /// fresh engine the report does not depend on the policy or on the
    /// scheduling order.  The worst-case masking sensitivities are computed
    /// once per parameter and shared across all faulty-element rows.
    ///
    /// # Errors
    ///
    /// Propagates measurement errors (singular matrices, unknown nodes,
    /// missing response features).
    pub fn run(&self) -> Result<DeviationReport, AnalogError> {
        self.run_on(&WorkerPool::new(self.policy))
    }

    /// Like [`WorstCaseAnalysis::run`], but rides a caller-provided
    /// [`WorkerPool`] so a larger flow (the mixed-signal ATPG) charges the
    /// deviation rows to the same pool as its other stages.
    ///
    /// # Errors
    ///
    /// Propagates measurement errors (singular matrices, unknown nodes,
    /// missing response features).
    pub fn run_on(&self, pool: &WorkerPool) -> Result<DeviationReport, AnalogError> {
        let elements = match &self.elements {
            Some(e) => e.clone(),
            None => self.circuit.passive_elements(),
        };
        let element_names: Vec<(ElementId, String)> = elements
            .iter()
            .map(|&id| (id, self.circuit.element(id).name.clone()))
            .collect();
        let mut rows = Vec::new();
        for spec in self.parameters {
            let nominal = measure_with_mna(&Mna::new(self.circuit), spec)?;
            // First-order masking margins contributed by fault-free
            // elements: Σ_{j≠faulty} |S_j| · tol_element.  The sensitivities
            // depend only on (parameter, element), so compute each once and
            // derive every row's margin from the shared total.
            let sensitivities: Vec<f64> = if self.worst_case && nominal != 0.0 {
                let per_element = pool.run_chunks(
                    &elements,
                    1,
                    || (),
                    |(), _, _, chunk| {
                        let mna = Mna::new(self.circuit);
                        chunk
                            .iter()
                            .map(|&e| normalized_sensitivity_with_mna(&mna, spec, e, 0.01))
                            .collect::<Result<Vec<f64>, AnalogError>>()
                    },
                );
                let mut flat = Vec::with_capacity(elements.len());
                for chunk in per_element {
                    flat.extend(chunk?);
                }
                flat
            } else {
                vec![0.0; elements.len()]
            };
            let total_abs: f64 = sensitivities.iter().map(|s| s.abs()).sum();
            // Chunk size 1 (fresh engine per element) is deliberate, not an
            // oversight: value patches update the stamped matrices by
            // *delta* (`g += Δ`, restored by the inverse delta), which is
            // not bit-exact, so an engine shared across rows accumulates
            // history-dependent last-ulp drift.  A per-worker engine would
            // therefore make the report depend on which rows a worker
            // happened to claim — breaking the byte-identity guarantee.
            // The per-row engine build is one linear stamping pass, dwarfed
            // by the row's bracketing/bisection solves.
            let row_chunks = pool.run_chunks(
                &elements,
                1,
                || (),
                |(), _, offset, chunk| {
                    let mna = Mna::new(self.circuit);
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(k, &element)| {
                            let mask = (total_abs - sensitivities[offset + k].abs())
                                * self.element_tolerance.fraction();
                            let detectable = self
                                .minimum_detectable_deviation(&mna, spec, element, nominal, mask)?;
                            Ok(DeviationRow {
                                parameter: spec.name.clone(),
                                element: self.circuit.element(element).name.clone(),
                                element_id: element,
                                detectable_deviation: detectable,
                            })
                        })
                        .collect::<Result<Vec<DeviationRow>, AnalogError>>()
                },
            );
            for chunk in row_chunks {
                rows.extend(chunk?);
            }
        }
        Ok(DeviationReport {
            rows,
            parameters: self.parameters.iter().map(|p| p.name.clone()).collect(),
            elements: element_names,
        })
    }

    /// Finds the smallest deviation (searched in both directions) whose
    /// effect on the parameter exceeds `tolerance + mask`.  Returns the
    /// *larger* of the two directional thresholds so that any deviation of
    /// that magnitude is detectable regardless of sign; `None` when either
    /// direction stays inside the box up to the cap.
    fn minimum_detectable_deviation(
        &self,
        mna: &Mna<'_>,
        spec: &ParameterSpec,
        element: ElementId,
        nominal: f64,
        mask: f64,
    ) -> Result<Option<f64>, AnalogError> {
        let threshold = self.parameter_tolerance.fraction() + mask;
        let up = self.directional_threshold(mna, spec, element, nominal, threshold, 1.0)?;
        let down = self.directional_threshold(mna, spec, element, nominal, threshold, -1.0)?;
        Ok(match (up, down) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        })
    }

    fn directional_threshold(
        &self,
        mna: &Mna<'_>,
        spec: &ParameterSpec,
        element: ElementId,
        nominal: f64,
        threshold: f64,
        sign: f64,
    ) -> Result<Option<f64>, AnalogError> {
        let base = mna.value(element);
        let effect = |deviation: f64| -> Result<f64, AnalogError> {
            mna.set_value(element, base * (1.0 + sign * deviation));
            let value = measure_with_mna(mna, spec);
            mna.set_value(element, base);
            Ok(relative_deviation(value?, nominal).abs())
        };
        // Exponential bracketing.
        let mut lo = 0.0f64;
        let mut hi = 0.01f64;
        let mut found = false;
        while hi <= self.max_deviation {
            // Negative deviations cannot exceed -100 % (element value would
            // go non-positive); clamp the search there.
            if sign < 0.0 && hi >= 0.999 {
                hi = 0.999;
            }
            if effect(hi)? > threshold {
                found = true;
                break;
            }
            if sign < 0.0 && hi >= 0.999 {
                break;
            }
            lo = hi;
            hi *= 1.6;
        }
        if !found {
            return Ok(None);
        }
        // Bisection refinement.
        for _ in 0..50 {
            let mid = 0.5 * (lo + hi);
            if effect(mid)? > threshold {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(Some(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;
    use crate::params::{ParameterKind, ParameterSpec};

    /// A resistive divider: Vout = Vin · R2/(R1+R2); DC gain = 0.5 nominal.
    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R1", vin, vout, 10.0e3);
        c.resistor("R2", vout, Circuit::GROUND, 10.0e3);
        c
    }

    fn dc_spec() -> ParameterSpec {
        ParameterSpec::new("Adc", ParameterKind::DcGain, "Vin", "vout")
    }

    #[test]
    fn normalized_sensitivity_of_divider() {
        let c = divider();
        let spec = dc_spec();
        let r1 = c.find_element("R1").unwrap();
        let r2 = c.find_element("R2").unwrap();
        // d(R2/(R1+R2))/dR1 · R1/T = -R1/(R1+R2) = -0.5 at R1 = R2.
        let s1 = normalized_sensitivity(&c, &spec, r1, 0.001).unwrap();
        let s2 = normalized_sensitivity(&c, &spec, r2, 0.001).unwrap();
        assert!((s1 + 0.5).abs() < 1e-3, "S(R1) = {s1}");
        assert!((s2 - 0.5).abs() < 1e-3, "S(R2) = {s2}");
    }

    #[test]
    fn nominal_mode_threshold_matches_analytic_value() {
        // In nominal mode (no masking), a 5 % box on the gain and sensitivity
        // 0.5 means the detectable deviation is about 10 % (slightly more in
        // the + direction because the function saturates).
        let c = divider();
        let specs = vec![dc_spec()];
        let report = WorstCaseAnalysis::new(&c, &specs)
            .with_worst_case(false)
            .run()
            .unwrap();
        let d = report.deviation("Adc", "R2").expect("detectable");
        assert!(d > 0.08 && d < 0.15, "detectable deviation {d}");
    }

    #[test]
    fn worst_case_mode_requires_larger_deviation_than_nominal() {
        let c = divider();
        let specs = vec![dc_spec()];
        let nominal = WorstCaseAnalysis::new(&c, &specs)
            .with_worst_case(false)
            .run()
            .unwrap();
        let worst = WorstCaseAnalysis::new(&c, &specs)
            .with_worst_case(true)
            .run()
            .unwrap();
        let dn = nominal.deviation("Adc", "R1").unwrap();
        let dw = worst.deviation("Adc", "R1").unwrap();
        assert!(
            dw > dn,
            "worst-case threshold {dw} must exceed nominal threshold {dn}"
        );
    }

    #[test]
    fn independent_element_is_not_detectable() {
        // Add a resistor that does not influence the divider output at DC
        // (dangling branch to a capacitor).
        let mut c = divider();
        let vout = c.find_node("vout").unwrap();
        let extra = c.node("extra");
        c.resistor("R3", vout, extra, 1.0e3);
        c.capacitor("C1", extra, Circuit::GROUND, 1.0e-9);
        let specs = vec![dc_spec()];
        let report = WorstCaseAnalysis::new(&c, &specs).run().unwrap();
        assert_eq!(report.deviation("Adc", "R3"), None);
        let coverage = report.element_coverage();
        let r3 = coverage.iter().find(|(n, _)| n == "R3").unwrap();
        assert_eq!(r3.1, None);
        let r1 = coverage.iter().find(|(n, _)| n == "R1").unwrap();
        assert!(r1.1.is_some());
    }

    #[test]
    fn parallel_rows_are_bit_identical_to_serial() {
        let c = divider();
        let specs = vec![dc_spec()];
        let reference = WorstCaseAnalysis::new(&c, &specs)
            .with_worst_case(true)
            .run()
            .unwrap();
        for threads in [1usize, 2, 8] {
            let parallel = WorstCaseAnalysis::new(&c, &specs)
                .with_worst_case(true)
                .with_policy(ExecPolicy::Threads(threads))
                .run()
                .unwrap();
            // DeviationRow derives PartialEq over exact f64 values: this is
            // bit-identity, not tolerance equality.
            assert_eq!(parallel.rows(), reference.rows(), "{threads} threads");
            assert_eq!(parallel.parameters(), reference.parameters());
            assert_eq!(parallel.elements(), reference.elements());
        }
    }

    #[test]
    fn report_table_renders() {
        let c = divider();
        let specs = vec![dc_spec()];
        let report = WorstCaseAnalysis::new(&c, &specs)
            .with_worst_case(false)
            .run()
            .unwrap();
        let table = report.to_table();
        assert!(table.contains("Adc"));
        assert!(table.contains("R1"));
        assert_eq!(report.parameters(), &["Adc".to_owned()]);
        assert_eq!(report.elements().len(), 2);
        assert_eq!(report.rows().len(), 2);
    }
}
