//! Frequency-response extraction: sweeps, peak search and cut-off frequencies.

use msatpg_exec::{par_map_chunks, CancelToken, ExecPolicy};

use crate::mna::Mna;
use crate::netlist::{Circuit, NodeId};
use crate::AnalogError;

/// Number of sweep points per parallel work unit: large enough to amortize
/// the per-chunk engine stamping, small enough to balance a default sweep
/// (~211 points) across a handful of workers.
const SWEEP_CHUNK: usize = 32;

/// Configuration of the logarithmic frequency sweep used when extracting
/// response parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepConfig {
    /// Lowest frequency of the sweep in hertz.
    pub start_hz: f64,
    /// Highest frequency of the sweep in hertz.
    pub stop_hz: f64,
    /// Number of sweep points per decade.
    pub points_per_decade: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            start_hz: 1.0,
            stop_hz: 10.0e6,
            points_per_decade: 30,
        }
    }
}

impl SweepConfig {
    /// Generates the logarithmically spaced frequency grid.
    pub fn frequencies(&self) -> Vec<f64> {
        let decades = (self.stop_hz / self.start_hz).log10();
        let n = ((decades * self.points_per_decade as f64).ceil() as usize).max(2);
        (0..=n)
            .map(|i| self.start_hz * 10f64.powf(decades * i as f64 / n as f64))
            .collect()
    }
}

/// A sampled magnitude response |H(f)| of one output node.
#[derive(Clone, Debug, PartialEq)]
pub struct FrequencyResponse {
    points: Vec<(f64, f64)>,
}

impl FrequencyResponse {
    /// Samples the response of `circuit` from source `source` to node
    /// `output` over the given sweep.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (singular MNA matrix, unknown source).
    pub fn sweep(
        circuit: &Circuit,
        source: &str,
        output: NodeId,
        config: &SweepConfig,
    ) -> Result<Self, AnalogError> {
        let mna = Mna::new(circuit);
        Self::sweep_with_mna(&mna, source, output, config)
    }

    /// Samples the response using an existing (possibly patched) MNA engine,
    /// reusing its stamp pattern, per-frequency systems and factorizations.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (singular MNA matrix, unknown source).
    pub fn sweep_with_mna(
        mna: &Mna<'_>,
        source: &str,
        output: NodeId,
        config: &SweepConfig,
    ) -> Result<Self, AnalogError> {
        let mut points = Vec::new();
        for f in config.frequencies() {
            let gain = mna.gain(source, output, f)?;
            points.push((f, gain));
        }
        Ok(FrequencyResponse { points })
    }

    /// [`FrequencyResponse::sweep_with_mna`] under a cooperative
    /// [`CancelToken`]: one unit of the token's step quota is charged per
    /// sweep frequency, so a step-quota token interrupts the sweep after a
    /// deterministic number of points (a wall-clock deadline interrupts at
    /// the first point past it).  The partial sweep is discarded.
    ///
    /// # Errors
    ///
    /// [`AnalogError::Cancelled`] when the token fires mid-sweep; otherwise
    /// solver errors (singular MNA matrix, unknown source).
    pub fn sweep_with_mna_cancellable(
        mna: &Mna<'_>,
        source: &str,
        output: NodeId,
        config: &SweepConfig,
        cancel: &CancelToken,
    ) -> Result<Self, AnalogError> {
        let mut points = Vec::new();
        for f in config.frequencies() {
            if !cancel.charge(1) {
                return Err(AnalogError::Cancelled);
            }
            let gain = mna.gain(source, output, f)?;
            points.push((f, gain));
        }
        Ok(FrequencyResponse { points })
    }

    /// Samples the response with the sweep's frequency grid split into
    /// chunks executed on the worker pool; each chunk stamps its own MNA
    /// engine.  A solve at one frequency is a pure function of the circuit,
    /// so the sampled points are bit-identical to [`FrequencyResponse::sweep`]
    /// under every [`ExecPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates solver errors (singular MNA matrix, unknown source).
    pub fn sweep_policy(
        circuit: &Circuit,
        source: &str,
        output: NodeId,
        config: &SweepConfig,
        policy: ExecPolicy,
    ) -> Result<Self, AnalogError> {
        if policy.is_serial() {
            // One engine for the whole grid beats per-chunk stamping.
            return Self::sweep(circuit, source, output, config);
        }
        let freqs = config.frequencies();
        let chunks = par_map_chunks(policy, &freqs, SWEEP_CHUNK, |_, _, chunk_freqs| {
            let mna = Mna::new(circuit);
            chunk_freqs
                .iter()
                .map(|&f| mna.gain(source, output, f).map(|g| (f, g)))
                .collect::<Result<Vec<(f64, f64)>, AnalogError>>()
        });
        let mut points = Vec::with_capacity(freqs.len());
        for chunk in chunks {
            points.extend(chunk?);
        }
        Ok(FrequencyResponse { points })
    }

    /// [`FrequencyResponse::sweep_policy`] under a cooperative
    /// [`CancelToken`].  The whole grid is charged against the token's step
    /// quota **up front** (one unit per frequency) — an all-or-nothing
    /// decision that is deterministic under every [`ExecPolicy`] — and the
    /// workers additionally poll [`CancelToken::is_cancelled`] at chunk
    /// entry so an external cancel or a wall-clock deadline stops the sweep
    /// early.
    ///
    /// # Errors
    ///
    /// [`AnalogError::Cancelled`] when the token fires; otherwise solver
    /// errors.
    pub fn sweep_policy_cancellable(
        circuit: &Circuit,
        source: &str,
        output: NodeId,
        config: &SweepConfig,
        policy: ExecPolicy,
        cancel: &CancelToken,
    ) -> Result<Self, AnalogError> {
        if policy.is_serial() {
            let mna = Mna::new(circuit);
            return Self::sweep_with_mna_cancellable(&mna, source, output, config, cancel);
        }
        let freqs = config.frequencies();
        if !cancel.charge(freqs.len() as u64) {
            return Err(AnalogError::Cancelled);
        }
        let chunks = par_map_chunks(policy, &freqs, SWEEP_CHUNK, |_, _, chunk_freqs| {
            if cancel.is_cancelled() {
                return Err(AnalogError::Cancelled);
            }
            let mna = Mna::new(circuit);
            chunk_freqs
                .iter()
                .map(|&f| mna.gain(source, output, f).map(|g| (f, g)))
                .collect::<Result<Vec<(f64, f64)>, AnalogError>>()
        });
        let mut points = Vec::with_capacity(freqs.len());
        for chunk in chunks {
            points.extend(chunk?);
        }
        Ok(FrequencyResponse { points })
    }

    /// The `(frequency, gain)` samples in ascending frequency order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Maximum gain over the sweep and the frequency at which it occurs.
    pub fn peak(&self) -> (f64, f64) {
        self.points.iter().copied().fold(
            (0.0, 0.0),
            |(bf, bg), (f, g)| {
                if g > bg {
                    (f, g)
                } else {
                    (bf, bg)
                }
            },
        )
    }

    /// Gain at the lowest swept frequency (a proxy for the DC gain of
    /// low-pass responses).
    pub fn low_frequency_gain(&self) -> f64 {
        self.points.first().map(|&(_, g)| g).unwrap_or(0.0)
    }

    /// Gain at the highest swept frequency.
    pub fn high_frequency_gain(&self) -> f64 {
        self.points.last().map(|&(_, g)| g).unwrap_or(0.0)
    }
}

/// The MNA engine an analyzer works on: its own, or one shared with other
/// analyzers / a deviation analysis (so cached systems and value patches are
/// shared too).
enum MnaHandle<'a> {
    Owned(Box<Mna<'a>>),
    Shared(&'a Mna<'a>),
}

/// High-accuracy response-parameter extraction working directly on the MNA
/// solver (sweep for bracketing, bisection for refinement).
pub struct ResponseAnalyzer<'a> {
    mna: MnaHandle<'a>,
    source: String,
    output: NodeId,
    config: SweepConfig,
}

impl<'a> ResponseAnalyzer<'a> {
    /// Creates an analyzer for the transfer function `source → output` with
    /// its own MNA engine.
    pub fn new(circuit: &'a Circuit, source: &str, output: NodeId) -> Self {
        ResponseAnalyzer {
            mna: MnaHandle::Owned(Box::new(Mna::new(circuit))),
            source: source.to_owned(),
            output,
            config: SweepConfig::default(),
        }
    }

    /// Creates an analyzer on a shared MNA engine.  All of the engine's
    /// cached per-frequency systems — and any value patches applied through
    /// [`Mna::set_value`] — are visible to the analyzer, which is how the
    /// deviation analysis measures parameters of a perturbed circuit without
    /// rebuilding anything.
    pub fn from_mna(mna: &'a Mna<'a>, source: &str, output: NodeId) -> Self {
        ResponseAnalyzer {
            mna: MnaHandle::Shared(mna),
            source: source.to_owned(),
            output,
            config: SweepConfig::default(),
        }
    }

    /// Replaces the sweep configuration.
    pub fn with_sweep(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// The underlying MNA engine.
    pub fn mna(&self) -> &Mna<'a> {
        match &self.mna {
            MnaHandle::Owned(mna) => mna,
            MnaHandle::Shared(mna) => mna,
        }
    }

    /// Gain magnitude at a single frequency.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn gain_at(&self, freq_hz: f64) -> Result<f64, AnalogError> {
        self.mna().gain(&self.source, self.output, freq_hz)
    }

    /// DC gain (`|H(0)|`).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn dc_gain(&self) -> Result<f64, AnalogError> {
        self.mna().gain(&self.source, self.output, 0.0)
    }

    /// Maximum gain over the sweep range, refined by golden-section search,
    /// returned as `(frequency, gain)`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn peak(&self) -> Result<(f64, f64), AnalogError> {
        let freqs = self.config.frequencies();
        let mut best_i = 0usize;
        let mut best_g = -1.0;
        for (i, &f) in freqs.iter().enumerate() {
            let g = self.gain_at(f)?;
            if g > best_g {
                best_g = g;
                best_i = i;
            }
        }
        // Refine around the best sample with golden-section search in log-f.
        let lo = freqs[best_i.saturating_sub(1)];
        let hi = freqs[(best_i + 1).min(freqs.len() - 1)];
        if lo >= hi {
            return Ok((freqs[best_i], best_g));
        }
        let (mut a, mut b) = (lo.ln(), hi.ln());
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        for _ in 0..60 {
            let c = b - phi * (b - a);
            let d = a + phi * (b - a);
            let gc = self.gain_at(c.exp())?;
            let gd = self.gain_at(d.exp())?;
            if gc > gd {
                b = d;
            } else {
                a = c;
            }
        }
        let f_peak = ((a + b) / 2.0).exp();
        Ok((f_peak, self.gain_at(f_peak)?))
    }

    /// Center frequency (frequency of maximum gain).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn center_frequency(&self) -> Result<f64, AnalogError> {
        Ok(self.peak()?.0)
    }

    /// Low cut-off: the highest frequency *below* the gain peak at which the
    /// gain falls to `peak/√2`.  Returns an error if the response never drops
    /// below the threshold on the low side (e.g. a low-pass filter).
    ///
    /// # Errors
    ///
    /// [`AnalogError::ParameterNotFound`] if no low-side crossing exists in
    /// the sweep range; otherwise solver errors.
    pub fn low_cutoff(&self) -> Result<f64, AnalogError> {
        let (f_peak, g_peak) = self.peak()?;
        let threshold = g_peak / std::f64::consts::SQRT_2;
        self.find_crossing(self.config.start_hz, f_peak, threshold, true)
    }

    /// High cut-off: the lowest frequency *above* the gain peak at which the
    /// gain falls to `peak/√2`.
    ///
    /// # Errors
    ///
    /// [`AnalogError::ParameterNotFound`] if no high-side crossing exists in
    /// the sweep range; otherwise solver errors.
    pub fn high_cutoff(&self) -> Result<f64, AnalogError> {
        let (f_peak, g_peak) = self.peak()?;
        let threshold = g_peak / std::f64::consts::SQRT_2;
        self.find_crossing(f_peak, self.config.stop_hz, threshold, false)
    }

    /// Finds the −3 dB crossing inside `[lo, hi]`.  When `rising` is true the
    /// gain is expected to rise through the threshold as frequency increases
    /// (low-side skirt); otherwise to fall through it (high-side skirt).
    fn find_crossing(
        &self,
        lo: f64,
        hi: f64,
        threshold: f64,
        rising: bool,
    ) -> Result<f64, AnalogError> {
        // Bracket by scanning log-spaced points.
        let steps = 200usize;
        let (lln, hln) = (lo.ln(), hi.ln());
        let mut prev_f = lo;
        let mut prev_g = self.gain_at(lo)?;
        let mut bracket = None;
        for i in 1..=steps {
            let f = (lln + (hln - lln) * i as f64 / steps as f64).exp();
            let g = self.gain_at(f)?;
            let crossed = if rising {
                prev_g < threshold && g >= threshold
            } else {
                prev_g >= threshold && g < threshold
            };
            if crossed {
                bracket = Some((prev_f, f));
                break;
            }
            prev_f = f;
            prev_g = g;
        }
        let (mut a, mut b) = bracket.ok_or(AnalogError::ParameterNotFound {
            what: "-3 dB crossing".to_owned(),
        })?;
        for _ in 0..80 {
            let mid = (a.ln() + b.ln()) / 2.0;
            let f = mid.exp();
            let g = self.gain_at(f)?;
            let below = g < threshold;
            if rising == below {
                a = f;
            } else {
                b = f;
            }
        }
        Ok((a * b).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Circuit, OpAmpModel};

    fn rc_lowpass(fc_hz: f64) -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        let r = 1.0e3;
        let cap = 1.0 / (std::f64::consts::TAU * fc_hz * r);
        c.resistor("R", vin, vout, r);
        c.capacitor("C", vout, Circuit::GROUND, cap);
        (c, vout)
    }

    /// A simple multiple-feedback band-pass around 1 kHz.
    fn active_bandpass() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vx = c.node("vx");
        let vminus = c.node("vminus");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R1", vin, vx, 10.0e3);
        c.resistor("R2", vx, Circuit::GROUND, 1.0e3);
        c.capacitor("C1", vx, vminus, 10.0e-9);
        c.capacitor("C2", vx, vout, 10.0e-9);
        c.resistor("R3", vminus, vout, 100.0e3);
        c.opamp("A1", Circuit::GROUND, vminus, vout, OpAmpModel::Ideal);
        (c, vout)
    }

    #[test]
    fn sweep_config_generates_log_grid() {
        let cfg = SweepConfig {
            start_hz: 1.0,
            stop_hz: 1000.0,
            points_per_decade: 10,
        };
        let f = cfg.frequencies();
        assert!((f[0] - 1.0).abs() < 1e-9);
        assert!((f.last().unwrap() - 1000.0).abs() < 1e-6);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
        assert!(f.len() >= 30);
    }

    #[test]
    fn lowpass_dc_gain_and_high_cutoff() {
        let (c, vout) = rc_lowpass(1000.0);
        let an = ResponseAnalyzer::new(&c, "Vin", vout);
        assert!((an.dc_gain().unwrap() - 1.0).abs() < 1e-6);
        let fh = an.high_cutoff().unwrap();
        assert!(
            (fh - 1000.0).abs() / 1000.0 < 0.02,
            "high cutoff {fh} should be near 1 kHz"
        );
        // A first-order low-pass has no low-side −3 dB point.
        assert!(an.low_cutoff().is_err());
    }

    #[test]
    fn bandpass_center_and_cutoffs() {
        let (c, vout) = active_bandpass();
        let an = ResponseAnalyzer::new(&c, "Vin", vout);
        let (f0, g0) = an.peak().unwrap();
        assert!(f0 > 100.0 && f0 < 10_000.0, "center frequency {f0}");
        assert!(g0 > 1.0, "peak gain {g0}");
        let fl = an.low_cutoff().unwrap();
        let fh = an.high_cutoff().unwrap();
        assert!(fl < f0 && f0 < fh, "fl={fl} f0={f0} fh={fh}");
        // At the cut-offs the gain is peak/sqrt(2) within tolerance.
        let target = g0 / std::f64::consts::SQRT_2;
        assert!((an.gain_at(fl).unwrap() - target).abs() / target < 0.01);
        assert!((an.gain_at(fh).unwrap() - target).abs() / target < 0.01);
    }

    #[test]
    fn frequency_response_sweep_and_peak() {
        let (c, vout) = active_bandpass();
        let resp = FrequencyResponse::sweep(&c, "Vin", vout, &SweepConfig::default()).unwrap();
        assert!(!resp.points().is_empty());
        let (f_peak, g_peak) = resp.peak();
        assert!(f_peak > 100.0 && f_peak < 10_000.0);
        assert!(g_peak > resp.low_frequency_gain());
        assert!(g_peak > resp.high_frequency_gain());
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let (c, vout) = active_bandpass();
        let config = SweepConfig::default();
        let reference = FrequencyResponse::sweep(&c, "Vin", vout, &config).unwrap();
        for policy in [
            ExecPolicy::Serial,
            ExecPolicy::Threads(2),
            ExecPolicy::Threads(8),
            ExecPolicy::Auto,
        ] {
            let swept = FrequencyResponse::sweep_policy(&c, "Vin", vout, &config, policy).unwrap();
            assert_eq!(swept.points(), reference.points(), "{policy:?}");
        }
    }

    #[test]
    fn shared_mna_analyzer_matches_owned_and_reuses_factorizations() {
        let (c, vout) = rc_lowpass(1000.0);
        let mna = Mna::new(&c);
        let shared = ResponseAnalyzer::from_mna(&mna, "Vin", vout);
        let owned = ResponseAnalyzer::new(&c, "Vin", vout);
        assert_eq!(shared.dc_gain().unwrap(), owned.dc_gain().unwrap());
        let fh_shared = shared.high_cutoff().unwrap();
        let fh_owned = owned.high_cutoff().unwrap();
        assert!((fh_shared - fh_owned).abs() < 1e-9);
        // A second extraction over the same analyzer re-solves the same
        // frequency grid: the cached factorizations must absorb most of it.
        let stats_before = mna.solver_stats();
        let _ = shared.high_cutoff().unwrap();
        let stats_after = mna.solver_stats();
        let new_solves = stats_after.solves - stats_before.solves;
        let new_factorizations = stats_after.factorizations - stats_before.factorizations;
        assert!(
            new_factorizations < new_solves / 2,
            "repeat extraction should be cache-dominated: {new_factorizations} factorizations for {new_solves} solves"
        );
        // The sweep helper can share the same engine.
        let resp =
            FrequencyResponse::sweep_with_mna(&mna, "Vin", vout, &SweepConfig::default()).unwrap();
        assert!(!resp.points().is_empty());
    }

    #[test]
    fn cancellable_sweep_matches_plain_when_the_quota_suffices() {
        let (c, vout) = rc_lowpass(1000.0);
        let config = SweepConfig::default();
        let mna = Mna::new(&c);
        let plain = FrequencyResponse::sweep_with_mna(&mna, "Vin", vout, &config).unwrap();
        let token = CancelToken::new();
        let governed =
            FrequencyResponse::sweep_with_mna_cancellable(&mna, "Vin", vout, &config, &token)
                .unwrap();
        assert_eq!(governed.points(), plain.points());
        for policy in [ExecPolicy::Serial, ExecPolicy::Threads(2)] {
            let token = CancelToken::with_step_quota(config.frequencies().len() as u64 + 8);
            let parallel = FrequencyResponse::sweep_policy_cancellable(
                &c, "Vin", vout, &config, policy, &token,
            )
            .unwrap();
            assert_eq!(parallel.points(), plain.points());
        }
    }

    #[test]
    fn step_quota_interrupts_the_sweep_deterministically() {
        let (c, vout) = rc_lowpass(1000.0);
        let config = SweepConfig::default();
        let grid = config.frequencies().len() as u64;
        assert!(grid > 10, "the default grid spans many points");
        // Serial: the quota fires mid-grid, after a deterministic number of
        // per-frequency charges.
        let mna = Mna::new(&c);
        let token = CancelToken::with_step_quota(10);
        let result =
            FrequencyResponse::sweep_with_mna_cancellable(&mna, "Vin", vout, &config, &token);
        assert_eq!(result, Err(AnalogError::Cancelled));
        assert!(token.is_cancelled());
        // Parallel: the whole grid is charged up front, all or nothing.
        let token = CancelToken::with_step_quota(grid / 2);
        let result = FrequencyResponse::sweep_policy_cancellable(
            &c,
            "Vin",
            vout,
            &config,
            ExecPolicy::Threads(2),
            &token,
        );
        assert_eq!(result, Err(AnalogError::Cancelled));
    }
}
