//! Dense complex matrices and LU factorization with partial pivoting.
//!
//! Circuit matrices produced by MNA are small (tens of unknowns for the
//! paper's filters), so a dense solver is both simple and fast enough.

use crate::complex::Complex;
use crate::AnalogError;

/// A dense, row-major complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![Complex::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Solves the linear system `self * x = b` by LU factorization with
    /// partial pivoting.  `self` is left unmodified.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] when the matrix is (numerically)
    /// singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len()` does not match.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, AnalogError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<Complex> = b.to_vec();
        // Forward elimination with partial pivoting.
        for col in 0..n {
            // Pivot search.
            let mut pivot_row = col;
            let mut pivot_mag = a[col * n + col].abs();
            for row in (col + 1)..n {
                let mag = a[row * n + col].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = row;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(AnalogError::SingularMatrix { pivot: col });
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / pivot;
                if factor.abs() == 0.0 {
                    continue;
                }
                for j in col..n {
                    let v = a[col * n + j];
                    a[row * n + j] -= factor * v;
                }
                let xv = x[col];
                x[row] -= factor * xv;
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in (col + 1)..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex {
        Complex::from_real(re)
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let m = Matrix::identity(3);
        let b = vec![c(1.0), c(2.0), c(3.0)];
        let x = m.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_small_real_system() {
        // [2 1; 1 3] x = [3; 5]  ->  x = [0.8, 1.4]
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = c(2.0);
        m[(0, 1)] = c(1.0);
        m[(1, 0)] = c(1.0);
        m[(1, 1)] = c(3.0);
        let x = m.solve(&[c(3.0), c(5.0)]).unwrap();
        assert!((x[0].re - 0.8).abs() < 1e-12);
        assert!((x[1].re - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero on the diagonal forces a row swap.
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = c(0.0);
        m[(0, 1)] = c(1.0);
        m[(1, 0)] = c(1.0);
        m[(1, 1)] = c(0.0);
        let x = m.solve(&[c(7.0), c(9.0)]).unwrap();
        assert!((x[0].re - 9.0).abs() < 1e-12);
        assert!((x[1].re - 7.0).abs() < 1e-12);
    }

    #[test]
    fn solve_complex_system() {
        // (1+j) x = 2j  ->  x = 2j / (1+j) = (1 + j)
        let mut m = Matrix::zeros(1, 1);
        m[(0, 0)] = Complex::new(1.0, 1.0);
        let x = m.solve(&[Complex::new(0.0, 2.0)]).unwrap();
        assert!((x[0].re - 1.0).abs() < 1e-12);
        assert!((x[0].im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_an_error() {
        let m = Matrix::zeros(2, 2);
        let err = m.solve(&[c(1.0), c(1.0)]).unwrap_err();
        assert!(matches!(err, AnalogError::SingularMatrix { .. }));
    }

    #[test]
    fn solution_satisfies_system() {
        let mut m = Matrix::zeros(3, 3);
        let vals = [
            [4.0, 1.0, 2.0],
            [1.0, 5.0, 1.0],
            [2.0, 1.0, 6.0],
        ];
        for (i, row) in vals.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = c(v);
            }
        }
        let b = vec![c(1.0), c(-2.0), c(0.5)];
        let x = m.solve(&b).unwrap();
        let back = m.mul_vec(&x);
        for (bi, bb) in back.iter().zip(&b) {
            assert!((bi.re - bb.re).abs() < 1e-10);
            assert!((bi.im - bb.im).abs() < 1e-10);
        }
    }
}
