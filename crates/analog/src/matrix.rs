//! Dense complex matrices and LU factorization with partial pivoting.
//!
//! Circuit matrices produced by MNA are small (tens of unknowns for the
//! paper's filters), so a dense solver is both simple and fast enough.

use crate::complex::Complex;
use crate::AnalogError;

/// A dense, row-major complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![Complex::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Solves the linear system `self * x = b` by LU factorization with
    /// partial pivoting.  `self` is left unmodified.
    ///
    /// For repeated solves against the same matrix (multiple right-hand
    /// sides) or repeated solves of same-shaped matrices (frequency sweeps),
    /// use [`LuFactor`], which factors once and reuses its storage.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] when the matrix is (numerically)
    /// singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len()` does not match.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, AnalogError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let mut factor = LuFactor::new(self.rows);
        factor.refactor_slice(&self.data)?;
        let mut x = b.to_vec();
        factor.solve_in_place(&mut x);
        Ok(x)
    }
}

/// A reusable LU factorization (partial pivoting) of an `n × n` complex
/// matrix.
///
/// The factor owns its storage and can be refilled from a new matrix of the
/// same size with [`LuFactor::refactor`] without reallocating — the pattern
/// used by frequency sweeps, where the matrix values change per sweep point
/// but the size never does.  One factorization serves any number of
/// right-hand sides via [`LuFactor::solve_in_place`].
#[derive(Clone, Debug)]
pub struct LuFactor {
    n: usize,
    /// Packed `L\U` factors, row-major (unit diagonal of `L` implicit).
    lu: Vec<Complex>,
    /// `ipiv[col]` is the row swapped into `col` during pivoting.
    ipiv: Vec<usize>,
    /// `true` only after a successful factorization; cleared on entry to a
    /// refactor so a failed (singular) attempt cannot be solved against.
    factored: bool,
}

impl LuFactor {
    /// Creates an empty (unfactored) holder for `n × n` systems.
    pub fn new(n: usize) -> Self {
        LuFactor {
            n,
            lu: vec![Complex::ZERO; n * n],
            ipiv: vec![0; n],
            factored: false,
        }
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Returns `true` if the holder currently contains a valid
    /// factorization (i.e. the last [`LuFactor::refactor`] succeeded and
    /// [`LuFactor::invalidate`] has not been called since).
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Marks the stored factorization as stale (e.g. because the matrix it
    /// was computed from has been patched); the next solve must refactor.
    pub fn invalidate(&mut self) {
        self.factored = false;
    }

    /// Factors `matrix`, reusing this holder's storage.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] when the matrix is
    /// (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or its size does not match.
    pub fn refactor(&mut self, matrix: &Matrix) -> Result<(), AnalogError> {
        assert_eq!(
            matrix.rows, matrix.cols,
            "factorization requires a square matrix"
        );
        assert_eq!(matrix.rows, self.n, "matrix size mismatch");
        self.refactor_slice(&matrix.data)
    }

    /// Factors a row-major `n × n` slice, reusing this holder's storage.
    pub(crate) fn refactor_slice(&mut self, data: &[Complex]) -> Result<(), AnalogError> {
        let n = self.n;
        assert_eq!(data.len(), n * n, "matrix size mismatch");
        self.factored = false;
        self.lu.copy_from_slice(data);
        let a = &mut self.lu;
        for col in 0..n {
            // Pivot search.
            let mut pivot_row = col;
            let mut pivot_mag = a[col * n + col].abs();
            for row in (col + 1)..n {
                let mag = a[row * n + col].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = row;
                }
            }
            // Non-finite pivots (from an infinite stamp such as a
            // zero-valued resistor) are as unusable as zero ones: report
            // the system as singular instead of producing NaN solutions.
            if pivot_mag < 1e-300 || !pivot_mag.is_finite() {
                return Err(AnalogError::SingularMatrix { pivot: col });
            }
            self.ipiv[col] = pivot_row;
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
            }
            let pivot = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / pivot;
                a[row * n + col] = factor; // store the L multiplier in place
                if factor.abs() == 0.0 {
                    continue;
                }
                for j in (col + 1)..n {
                    let v = a[col * n + j];
                    a[row * n + j] -= factor * v;
                }
            }
        }
        self.factored = true;
        Ok(())
    }

    /// Solves `A x = b` in place using the stored factors (`b` becomes `x`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension, or if the
    /// holder has no valid factorization (never factored, or the last
    /// [`LuFactor::refactor`] returned a singular-matrix error).
    pub fn solve_in_place(&self, b: &mut [Complex]) {
        let n = self.n;
        assert!(
            self.factored,
            "solve_in_place called without a successful factorization"
        );
        assert_eq!(b.len(), n, "rhs length mismatch");
        let a = &self.lu;
        // Apply the row permutation, then forward-substitute through L.
        for col in 0..n {
            b.swap(col, self.ipiv[col]);
        }
        for col in 0..n {
            let xv = b[col];
            if xv.abs() == 0.0 {
                continue;
            }
            for row in (col + 1)..n {
                let factor = a[row * n + col];
                b[row] -= factor * xv;
            }
        }
        // Back substitution through U.
        for col in (0..n).rev() {
            let mut acc = b[col];
            for j in (col + 1)..n {
                acc -= a[col * n + j] * b[j];
            }
            b[col] = acc / a[col * n + col];
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex {
        Complex::from_real(re)
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let m = Matrix::identity(3);
        let b = vec![c(1.0), c(2.0), c(3.0)];
        let x = m.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_small_real_system() {
        // [2 1; 1 3] x = [3; 5]  ->  x = [0.8, 1.4]
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = c(2.0);
        m[(0, 1)] = c(1.0);
        m[(1, 0)] = c(1.0);
        m[(1, 1)] = c(3.0);
        let x = m.solve(&[c(3.0), c(5.0)]).unwrap();
        assert!((x[0].re - 0.8).abs() < 1e-12);
        assert!((x[1].re - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero on the diagonal forces a row swap.
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = c(0.0);
        m[(0, 1)] = c(1.0);
        m[(1, 0)] = c(1.0);
        m[(1, 1)] = c(0.0);
        let x = m.solve(&[c(7.0), c(9.0)]).unwrap();
        assert!((x[0].re - 9.0).abs() < 1e-12);
        assert!((x[1].re - 7.0).abs() < 1e-12);
    }

    #[test]
    fn solve_complex_system() {
        // (1+j) x = 2j  ->  x = 2j / (1+j) = (1 + j)
        let mut m = Matrix::zeros(1, 1);
        m[(0, 0)] = Complex::new(1.0, 1.0);
        let x = m.solve(&[Complex::new(0.0, 2.0)]).unwrap();
        assert!((x[0].re - 1.0).abs() < 1e-12);
        assert!((x[0].im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_an_error() {
        let m = Matrix::zeros(2, 2);
        let err = m.solve(&[c(1.0), c(1.0)]).unwrap_err();
        assert!(matches!(err, AnalogError::SingularMatrix { .. }));
    }

    #[test]
    fn lu_factor_is_reusable_across_matrices_and_rhs() {
        // Factor once, solve two right-hand sides; refactor with different
        // values in the same storage and solve again.
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = c(2.0);
        m[(0, 1)] = c(1.0);
        m[(1, 0)] = c(1.0);
        m[(1, 1)] = c(3.0);
        let mut lu = LuFactor::new(2);
        lu.refactor(&m).unwrap();
        assert_eq!(lu.dim(), 2);
        let mut x1 = vec![c(3.0), c(5.0)];
        lu.solve_in_place(&mut x1);
        assert!((x1[0].re - 0.8).abs() < 1e-12);
        assert!((x1[1].re - 1.4).abs() < 1e-12);
        let mut x2 = vec![c(2.0), c(1.0)];
        lu.solve_in_place(&mut x2);
        let back = m.mul_vec(&x2);
        assert!((back[0].re - 2.0).abs() < 1e-12);
        assert!((back[1].re - 1.0).abs() < 1e-12);
        // Refactor with a permuted matrix that needs pivoting.
        let mut m2 = Matrix::zeros(2, 2);
        m2[(0, 1)] = c(1.0);
        m2[(1, 0)] = c(1.0);
        lu.refactor(&m2).unwrap();
        let mut x3 = vec![c(7.0), c(9.0)];
        lu.solve_in_place(&mut x3);
        assert!((x3[0].re - 9.0).abs() < 1e-12);
        assert!((x3[1].re - 7.0).abs() < 1e-12);
    }

    #[test]
    fn lu_factor_reports_singularity() {
        let mut lu = LuFactor::new(2);
        assert!(!lu.is_factored());
        let err = lu.refactor(&Matrix::zeros(2, 2)).unwrap_err();
        assert!(matches!(err, AnalogError::SingularMatrix { .. }));
        assert!(!lu.is_factored());
        // A successful refactor validates the holder again; a later failed
        // one invalidates it.
        lu.refactor(&Matrix::identity(2)).unwrap();
        assert!(lu.is_factored());
        let _ = lu.refactor(&Matrix::zeros(2, 2));
        assert!(!lu.is_factored());
    }

    #[test]
    #[should_panic(expected = "without a successful factorization")]
    fn solving_an_unfactored_holder_panics() {
        let lu = LuFactor::new(2);
        let mut b = vec![c(1.0), c(2.0)];
        lu.solve_in_place(&mut b);
    }

    #[test]
    fn solution_satisfies_system() {
        let mut m = Matrix::zeros(3, 3);
        let vals = [[4.0, 1.0, 2.0], [1.0, 5.0, 1.0], [2.0, 1.0, 6.0]];
        for (i, row) in vals.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = c(v);
            }
        }
        let b = vec![c(1.0), c(-2.0), c(0.5)];
        let x = m.solve(&b).unwrap();
        let back = m.mul_vec(&x);
        for (bi, bb) in back.iter().zip(&b) {
            assert!((bi.re - bb.re).abs() < 1e-10);
            assert!((bi.im - bb.im).abs() < 1e-10);
        }
    }
}
