//! Analog circuit simulation, sensitivity analysis and analog test selection.
//!
//! This crate is the analog substrate of the mixed-signal ATPG reproduction:
//!
//! * [`netlist`] / [`mna`] — a linear circuit simulator (modified nodal
//!   analysis with complex arithmetic) supporting R, C, L, independent
//!   sources, VCVS and ideal / finite-gain op-amps;
//! * [`response`] / [`params`] — frequency-response extraction and the
//!   measurable "performances" of the paper (DC gain, AC gain, center and
//!   cut-off frequencies);
//! * [`sensitivity`] / [`coverage`] — worst-case element-deviation analysis
//!   and bipartite parameter/element test-set selection (§2.1 of the paper);
//! * [`fault`] / [`signal`] — parametric and catastrophic analog faults and
//!   sinusoidal test stimuli;
//! * [`filters`] — the paper's circuits (Figures 2, 7 and 8).
//!
//! # Example: Example 1 of the paper
//!
//! ```
//! use msatpg_analog::filters;
//! use msatpg_analog::sensitivity::WorstCaseAnalysis;
//! use msatpg_analog::coverage::CoverageGraph;
//!
//! let filter = filters::second_order_band_pass();
//! let report = WorstCaseAnalysis::new(filter.circuit(), filter.parameters())
//!     .with_parameter_tolerance(0.05)
//!     .run()?;
//! let graph = CoverageGraph::from_report(&report);
//! let selection = graph.select_test_set();
//! // A small set of gain parameters covers every element of the band-pass.
//! assert!(!selection.parameters.is_empty());
//! # Ok::<(), msatpg_analog::AnalogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod coverage;
pub mod fault;
pub mod filters;
pub mod matrix;
pub mod mna;
pub mod netlist;
pub mod params;
pub mod response;
pub mod sensitivity;
pub mod signal;
pub mod tolerance;

/// Execution policy of the workspace worker pool (re-export of
/// [`msatpg_exec::ExecPolicy`]).
pub use msatpg_exec::ExecPolicy;

pub use complex::Complex;
pub use fault::{AnalogFault, AnalogFaultKind};
pub use filters::FilterCircuit;
pub use netlist::{Circuit, ElementId, ElementKind, NodeId, OpAmpModel};
pub use params::{measure, ParameterKind, ParameterSpec};
pub use sensitivity::{DeviationReport, WorstCaseAnalysis};
pub use signal::SineStimulus;
pub use tolerance::Tolerance;

use std::fmt;

/// Errors produced by the analog simulation and analysis layers.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AnalogError {
    /// The MNA matrix is singular (typically a floating node or an
    /// ill-formed feedback structure).
    SingularMatrix {
        /// Pivot column at which elimination failed.
        pivot: usize,
    },
    /// The circuit failed structural validation.
    InvalidCircuit {
        /// Explanation of the problem.
        reason: String,
    },
    /// A named element does not exist in the circuit.
    UnknownElement {
        /// The missing element name.
        name: String,
    },
    /// A named node does not exist in the circuit.
    UnknownNode {
        /// The missing node name.
        name: String,
    },
    /// A requested response feature (peak, cut-off, …) does not exist in the
    /// swept frequency range.
    ParameterNotFound {
        /// Description of the feature that was searched for.
        what: String,
    },
    /// A cooperative [`msatpg_exec::CancelToken`] fired while a sweep was in
    /// progress; the partial work was discarded.
    Cancelled,
}

impl fmt::Display for AnalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalogError::SingularMatrix { pivot } => {
                write!(f, "singular MNA matrix (zero pivot at column {pivot})")
            }
            AnalogError::InvalidCircuit { reason } => write!(f, "invalid circuit: {reason}"),
            AnalogError::UnknownElement { name } => write!(f, "unknown element '{name}'"),
            AnalogError::UnknownNode { name } => write!(f, "unknown node '{name}'"),
            AnalogError::ParameterNotFound { what } => {
                write!(f, "response feature not found in sweep range: {what}")
            }
            AnalogError::Cancelled => write!(f, "analog sweep cancelled"),
        }
    }
}

impl std::error::Error for AnalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_variants() {
        let variants: Vec<AnalogError> = vec![
            AnalogError::SingularMatrix { pivot: 3 },
            AnalogError::InvalidCircuit {
                reason: "no source".into(),
            },
            AnalogError::UnknownElement { name: "R42".into() },
            AnalogError::UnknownNode { name: "vx".into() },
            AnalogError::ParameterNotFound {
                what: "low cutoff".into(),
            },
        ];
        for v in variants {
            assert!(!format!("{v}").is_empty());
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalogError>();
    }
}
