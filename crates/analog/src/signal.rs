//! Sinusoidal test stimuli (the `(A, f)` pairs of Table 1).

use std::fmt;

use crate::mna::Mna;
use crate::netlist::{Circuit, NodeId};
use crate::AnalogError;

/// A sinusoidal stimulus `A · sin(2π f t)` applied to the analog primary
/// input of the mixed circuit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SineStimulus {
    /// Peak amplitude in volts.
    pub amplitude: f64,
    /// Frequency in hertz (0 means a DC stimulus of `amplitude` volts).
    pub frequency_hz: f64,
}

impl SineStimulus {
    /// Creates a stimulus.
    pub fn new(amplitude: f64, frequency_hz: f64) -> Self {
        SineStimulus {
            amplitude,
            frequency_hz,
        }
    }

    /// A DC stimulus.
    pub fn dc(amplitude: f64) -> Self {
        SineStimulus {
            amplitude,
            frequency_hz: 0.0,
        }
    }

    /// Returns `true` for DC stimuli.
    pub fn is_dc(&self) -> bool {
        self.frequency_hz == 0.0
    }
}

impl fmt::Display for SineStimulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dc() {
            write!(f, "{:.4} V DC", self.amplitude)
        } else {
            write!(
                f,
                "{:.4} V sine @ {:.1} Hz",
                self.amplitude, self.frequency_hz
            )
        }
    }
}

/// Peak amplitude of the steady-state response at `output` when `stimulus`
/// drives the source named `source` (linear small-signal analysis: the output
/// amplitude is `A · |H(f)|`).
///
/// # Errors
///
/// Propagates solver errors.
pub fn output_amplitude(
    circuit: &Circuit,
    source: &str,
    output: NodeId,
    stimulus: &SineStimulus,
) -> Result<f64, AnalogError> {
    let mna = Mna::new(circuit);
    let gain = mna.gain(source, output, stimulus.frequency_hz)?;
    Ok(stimulus.amplitude * gain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;

    #[test]
    fn stimulus_constructors_and_display() {
        let s = SineStimulus::new(2.0, 1000.0);
        assert!(!s.is_dc());
        assert!(format!("{s}").contains("1000.0 Hz"));
        let d = SineStimulus::dc(1.5);
        assert!(d.is_dc());
        assert!(format!("{d}").contains("DC"));
    }

    #[test]
    fn output_amplitude_scales_with_gain() {
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R1", vin, vout, 1.0e3);
        c.resistor("R2", vout, Circuit::GROUND, 3.0e3);
        // Divider gain = 0.75 at every frequency.
        let amp = output_amplitude(&c, "Vin", vout, &SineStimulus::new(2.0, 1.0e3)).unwrap();
        assert!((amp - 1.5).abs() < 1e-9);
    }
}
