//! Analog circuit netlists: nodes, elements and a builder-style API.

use std::collections::HashMap;
use std::fmt;

use crate::AnalogError;

/// Identifier of a circuit node.  Node `0` is always ground.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of the node.
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns `true` if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of an element inside a [`Circuit`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Raw index of the element.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Operational-amplifier models supported by the simulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OpAmpModel {
    /// Nullor model: infinite gain, the two inputs are forced equal.
    Ideal,
    /// Single-pole finite-gain model `A(s) = a0 / (1 + s / (2π pole_hz))`.
    FiniteGain {
        /// Open-loop DC gain.
        a0: f64,
        /// Open-loop −3 dB frequency in hertz.
        pole_hz: f64,
    },
}

/// The electrical behaviour of an element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ElementKind {
    /// Resistor (value in ohms) between two nodes.
    Resistor {
        /// Resistance in ohms.
        value: f64,
    },
    /// Capacitor (value in farads) between two nodes.
    Capacitor {
        /// Capacitance in farads.
        value: f64,
    },
    /// Inductor (value in henries) between two nodes.
    Inductor {
        /// Inductance in henries.
        value: f64,
    },
    /// Independent voltage source between two nodes (`plus`, `minus`).
    VoltageSource {
        /// DC value in volts.
        dc: f64,
        /// AC (small-signal) magnitude in volts.
        ac: f64,
    },
    /// Independent current source from `plus` into `minus`.
    CurrentSource {
        /// DC value in amperes.
        dc: f64,
        /// AC (small-signal) magnitude in amperes.
        ac: f64,
    },
    /// Voltage-controlled voltage source: `V(p, n) = gain · V(cp, cn)`.
    Vcvs {
        /// Voltage gain.
        gain: f64,
    },
    /// Operational amplifier with inputs `(in+, in−)` and output `out`
    /// (referenced to ground).
    OpAmp {
        /// Op-amp model used during simulation.
        model: OpAmpModel,
    },
}

impl ElementKind {
    /// The scalar "value" of the element (resistance, capacitance,
    /// inductance, source magnitude or gain), used for parametric fault
    /// injection.
    pub fn value(&self) -> f64 {
        match *self {
            ElementKind::Resistor { value }
            | ElementKind::Capacitor { value }
            | ElementKind::Inductor { value } => value,
            ElementKind::VoltageSource { ac, .. } | ElementKind::CurrentSource { ac, .. } => ac,
            ElementKind::Vcvs { gain } => gain,
            ElementKind::OpAmp { model } => match model {
                OpAmpModel::Ideal => f64::INFINITY,
                OpAmpModel::FiniteGain { a0, .. } => a0,
            },
        }
    }

    /// Returns a copy of the element kind with its scalar value replaced.
    pub fn with_value(&self, new_value: f64) -> ElementKind {
        match *self {
            ElementKind::Resistor { .. } => ElementKind::Resistor { value: new_value },
            ElementKind::Capacitor { .. } => ElementKind::Capacitor { value: new_value },
            ElementKind::Inductor { .. } => ElementKind::Inductor { value: new_value },
            ElementKind::VoltageSource { dc, .. } => {
                ElementKind::VoltageSource { dc, ac: new_value }
            }
            ElementKind::CurrentSource { dc, .. } => {
                ElementKind::CurrentSource { dc, ac: new_value }
            }
            ElementKind::Vcvs { .. } => ElementKind::Vcvs { gain: new_value },
            ElementKind::OpAmp { model } => match model {
                OpAmpModel::Ideal => ElementKind::OpAmp {
                    model: OpAmpModel::Ideal,
                },
                OpAmpModel::FiniteGain { pole_hz, .. } => ElementKind::OpAmp {
                    model: OpAmpModel::FiniteGain {
                        a0: new_value,
                        pole_hz,
                    },
                },
            },
        }
    }

    /// True for passive two-terminal elements (R, C, L) — the elements the
    /// analog fault model targets.
    pub fn is_passive(&self) -> bool {
        matches!(
            self,
            ElementKind::Resistor { .. }
                | ElementKind::Capacitor { .. }
                | ElementKind::Inductor { .. }
        )
    }
}

/// A circuit element: a name, its behaviour and its terminal connections.
#[derive(Clone, Debug, PartialEq)]
pub struct Element {
    /// Human-readable element name (e.g. `"Rd"`, `"C1"`).
    pub name: String,
    /// Electrical behaviour.
    pub kind: ElementKind,
    /// Terminal nodes.  The interpretation depends on [`ElementKind`]:
    /// two-terminal elements use `[a, b]`, the VCVS uses `[p, n, cp, cn]`,
    /// and op-amps use `[in+, in−, out]`.
    pub nodes: Vec<NodeId>,
}

/// A linear(ised) analog circuit.
///
/// Circuits are built with the builder-style `add_*` methods and then handed
/// to [`crate::mna::Mna`] for DC/AC analysis.
///
/// # Example
///
/// ```
/// use msatpg_analog::netlist::Circuit;
///
/// let mut c = Circuit::new();
/// let vin = c.node("vin");
/// let vout = c.node("vout");
/// c.voltage_source("Vin", vin, Circuit::GROUND, 0.0, 1.0);
/// c.resistor("R1", vin, vout, 1.0e3);
/// c.resistor("R2", vout, Circuit::GROUND, 1.0e3);
/// assert_eq!(c.element_count(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    node_names: Vec<String>,
    node_by_name: HashMap<String, NodeId>,
    elements: Vec<Element>,
    element_by_name: HashMap<String, ElementId>,
}

impl Circuit {
    /// The ground node, shared by every circuit.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: Vec::new(),
            node_by_name: HashMap::new(),
            elements: Vec::new(),
            element_by_name: HashMap::new(),
        };
        c.node_names.push("0".to_owned());
        c.node_by_name.insert("0".to_owned(), NodeId(0));
        c
    }

    /// Returns (creating if necessary) the node with the given name.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_by_name.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_owned());
        self.node_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_by_name.get(name).copied()
    }

    /// Name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Number of nodes, including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Iterates over `(id, element)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ElementId, &Element)> {
        self.elements
            .iter()
            .enumerate()
            .map(|(i, e)| (ElementId(i), e))
    }

    /// The element with the given id.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0]
    }

    /// Looks up an element by name.
    pub fn find_element(&self, name: &str) -> Option<ElementId> {
        self.element_by_name.get(name).copied()
    }

    /// Scalar value of an element (see [`ElementKind::value`]).
    pub fn value(&self, id: ElementId) -> f64 {
        self.elements[id.0].kind.value()
    }

    /// Replaces the scalar value of an element (used for fault injection and
    /// sensitivity analysis).
    pub fn set_value(&mut self, id: ElementId, new_value: f64) {
        let kind = self.elements[id.0].kind.with_value(new_value);
        self.elements[id.0].kind = kind;
    }

    /// Multiplies the scalar value of an element by `factor`.
    pub fn scale_value(&mut self, id: ElementId, factor: f64) {
        let v = self.value(id);
        self.set_value(id, v * factor);
    }

    /// Ids of all passive (R/C/L) elements — the analog fault universe.
    pub fn passive_elements(&self) -> Vec<ElementId> {
        self.iter()
            .filter(|(_, e)| e.kind.is_passive())
            .map(|(id, _)| id)
            .collect()
    }

    fn add(&mut self, name: &str, kind: ElementKind, nodes: Vec<NodeId>) -> ElementId {
        assert!(
            !self.element_by_name.contains_key(name),
            "duplicate element name {name}"
        );
        let id = ElementId(self.elements.len());
        self.elements.push(Element {
            name: name.to_owned(),
            kind,
            nodes,
        });
        self.element_by_name.insert(name.to_owned(), id);
        id
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or the value is not positive.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        assert!(ohms > 0.0, "resistance must be positive");
        self.add(name, ElementKind::Resistor { value: ohms }, vec![a, b])
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or the value is not positive.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        assert!(farads > 0.0, "capacitance must be positive");
        self.add(name, ElementKind::Capacitor { value: farads }, vec![a, b])
    }

    /// Adds an inductor between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or the value is not positive.
    pub fn inductor(&mut self, name: &str, a: NodeId, b: NodeId, henries: f64) -> ElementId {
        assert!(henries > 0.0, "inductance must be positive");
        self.add(name, ElementKind::Inductor { value: henries }, vec![a, b])
    }

    /// Adds an independent voltage source with `plus`/`minus` terminals.
    pub fn voltage_source(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        dc: f64,
        ac: f64,
    ) -> ElementId {
        self.add(
            name,
            ElementKind::VoltageSource { dc, ac },
            vec![plus, minus],
        )
    }

    /// Adds an independent current source flowing from `plus` to `minus`
    /// through the source.
    pub fn current_source(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        dc: f64,
        ac: f64,
    ) -> ElementId {
        self.add(
            name,
            ElementKind::CurrentSource { dc, ac },
            vec![plus, minus],
        )
    }

    /// Adds a voltage-controlled voltage source:
    /// `V(p, n) = gain · V(cp, cn)`.
    pub fn vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> ElementId {
        self.add(name, ElementKind::Vcvs { gain }, vec![p, n, cp, cn])
    }

    /// Adds an operational amplifier with inputs `in_plus`, `in_minus` and a
    /// ground-referenced output `out`.
    pub fn opamp(
        &mut self,
        name: &str,
        in_plus: NodeId,
        in_minus: NodeId,
        out: NodeId,
        model: OpAmpModel,
    ) -> ElementId {
        self.add(
            name,
            ElementKind::OpAmp { model },
            vec![in_plus, in_minus, out],
        )
    }

    /// Basic structural validation: every non-ground node must be connected
    /// to at least two element terminals and at least one source must exist.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidCircuit`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<(), AnalogError> {
        let mut degree = vec![0usize; self.node_count()];
        let mut has_source = false;
        for e in &self.elements {
            for n in &e.nodes {
                degree[n.0] += 1;
            }
            if matches!(
                e.kind,
                ElementKind::VoltageSource { .. } | ElementKind::CurrentSource { .. }
            ) {
                has_source = true;
            }
        }
        if !has_source {
            return Err(AnalogError::InvalidCircuit {
                reason: "circuit has no independent source".to_owned(),
            });
        }
        for (i, &d) in degree.iter().enumerate().skip(1) {
            if d < 2 {
                return Err(AnalogError::InvalidCircuit {
                    reason: format!(
                        "node '{}' is connected to {} terminal(s); every node needs at least 2",
                        self.node_names[i], d
                    ),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: {} nodes, {} elements",
            self.node_count(),
            self.element_count()
        )?;
        for e in &self.elements {
            let nodes: Vec<&str> = e.nodes.iter().map(|n| self.node_name(*n)).collect();
            writeln!(f, "  {} {:?} [{}]", e.name, e.kind, nodes.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_deduplicated() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "a");
        assert!(Circuit::GROUND.is_ground());
        assert!(!a.is_ground());
    }

    #[test]
    fn element_lookup_and_value_editing() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.voltage_source("V1", a, Circuit::GROUND, 1.0, 1.0);
        let r = c.resistor("R1", a, Circuit::GROUND, 100.0);
        assert_eq!(c.find_element("R1"), Some(r));
        assert_eq!(c.value(r), 100.0);
        c.scale_value(r, 1.1);
        assert!((c.value(r) - 110.0).abs() < 1e-9);
        c.set_value(r, 50.0);
        assert_eq!(c.value(r), 50.0);
        assert_eq!(c.element(r).name, "R1");
        assert_eq!(c.passive_elements(), vec![r]);
    }

    #[test]
    fn validation_catches_dangling_node() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.voltage_source("V1", a, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R1", a, b, 100.0);
        let err = c.validate().unwrap_err();
        assert!(matches!(err, AnalogError::InvalidCircuit { .. }));
        // Closing the loop fixes it.
        c.resistor("R2", b, Circuit::GROUND, 100.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_requires_a_source() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GROUND, 100.0);
        c.resistor("R2", a, Circuit::GROUND, 100.0);
        assert!(matches!(
            c.validate(),
            Err(AnalogError::InvalidCircuit { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate element name")]
    fn duplicate_names_panic() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GROUND, 1.0);
        c.resistor("R1", a, Circuit::GROUND, 2.0);
    }

    #[test]
    fn element_kind_value_roundtrip() {
        let k = ElementKind::Capacitor { value: 1e-9 };
        assert_eq!(k.value(), 1e-9);
        assert_eq!(k.with_value(2e-9).value(), 2e-9);
        let v = ElementKind::VoltageSource { dc: 1.0, ac: 0.5 };
        assert_eq!(v.value(), 0.5);
        let o = ElementKind::OpAmp {
            model: OpAmpModel::FiniteGain {
                a0: 1e5,
                pole_hz: 10.0,
            },
        };
        assert_eq!(o.value(), 1e5);
        assert!(!o.is_passive());
        assert!(k.is_passive());
    }

    #[test]
    fn display_lists_elements() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.voltage_source("Vin", a, Circuit::GROUND, 0.0, 1.0);
        c.resistor("R1", a, Circuit::GROUND, 42.0);
        let s = format!("{c}");
        assert!(s.contains("R1"));
        assert!(s.contains("Vin"));
    }
}
