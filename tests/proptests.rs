//! Property-based tests on the core substrates: BDD algebra against
//! brute-force truth tables, ATPG vectors against fault simulation, logic
//! simulation against the D-algebra, analog solver against circuit theory,
//! and the conversion block's code space.
//!
//! The properties are exercised with an in-tree deterministic generator
//! (SplitMix64) instead of the `proptest` crate so the workspace builds
//! without network access; every run checks the same fixed case set.

use msatpg::bdd::{Assignment, BddManager};
use msatpg::conversion::constraints::thermometer_codes;
use msatpg::conversion::{FlashAdc, ResistorLadder};
use msatpg::core::digital_atpg::{AtpgReport, DigitalAtpg, TestOutcome};
use msatpg::digital::circuits;
use msatpg::digital::fault::{FaultList, StuckAtFault};
use msatpg::digital::fault_sim::FaultSimulator;
use msatpg::digital::logic::Logic;
use msatpg::digital::prng::SplitMix64;
use msatpg::digital::sim::{CompositeSimulator, Simulator};
use msatpg::exec::ExecPolicy;

const CASES: usize = 64;

/// A tiny Boolean expression AST for generating random formulas.
#[derive(Clone, Debug)]
enum Formula {
    Var(usize),
    Not(Box<Formula>),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
    Xor(Box<Formula>, Box<Formula>),
}

impl Formula {
    fn eval(&self, inputs: &[bool]) -> bool {
        match self {
            Formula::Var(i) => inputs[*i],
            Formula::Not(a) => !a.eval(inputs),
            Formula::And(a, b) => a.eval(inputs) && b.eval(inputs),
            Formula::Or(a, b) => a.eval(inputs) || b.eval(inputs),
            Formula::Xor(a, b) => a.eval(inputs) ^ b.eval(inputs),
        }
    }

    fn build(&self, m: &mut BddManager) -> msatpg::bdd::Bdd {
        match self {
            Formula::Var(i) => m.var(&format!("x{i}")),
            Formula::Not(a) => {
                let ba = a.build(m);
                m.not(ba)
            }
            Formula::And(a, b) => {
                let (ba, bb) = (a.build(m), b.build(m));
                m.and(ba, bb)
            }
            Formula::Or(a, b) => {
                let (ba, bb) = (a.build(m), b.build(m));
                m.or(ba, bb)
            }
            Formula::Xor(a, b) => {
                let (ba, bb) = (a.build(m), b.build(m));
                m.xor(ba, bb)
            }
        }
    }
}

/// Generates a random formula of bounded depth over `vars` variables.
fn random_formula(rng: &mut SplitMix64, vars: usize, depth: usize) -> Formula {
    if depth == 0 || rng.below(5) == 0 {
        return Formula::Var(rng.below(vars));
    }
    match rng.below(4) {
        0 => Formula::Not(Box::new(random_formula(rng, vars, depth - 1))),
        1 => Formula::And(
            Box::new(random_formula(rng, vars, depth - 1)),
            Box::new(random_formula(rng, vars, depth - 1)),
        ),
        2 => Formula::Or(
            Box::new(random_formula(rng, vars, depth - 1)),
            Box::new(random_formula(rng, vars, depth - 1)),
        ),
        _ => Formula::Xor(
            Box::new(random_formula(rng, vars, depth - 1)),
            Box::new(random_formula(rng, vars, depth - 1)),
        ),
    }
}

fn random_pattern(rng: &mut SplitMix64, width: usize) -> Vec<bool> {
    (0..width).map(|_| rng.bool()).collect()
}

const FORMULA_VARS: usize = 5;

/// The BDD of a random formula agrees with brute-force evaluation on every
/// input assignment, and its satisfying-assignment count matches.
#[test]
fn bdd_matches_truth_table() {
    let mut rng = SplitMix64::new(0xB00);
    for _ in 0..CASES {
        let formula = random_formula(&mut rng, FORMULA_VARS, 4);
        let mut m = BddManager::new();
        // Declare variables in a fixed order so eval positions match.
        for i in 0..FORMULA_VARS {
            m.var(&format!("x{i}"));
        }
        let bdd = formula.build(&mut m);
        let mut count = 0u128;
        for bits in 0..1u32 << FORMULA_VARS {
            let inputs: Vec<bool> = (0..FORMULA_VARS).map(|b| (bits >> b) & 1 == 1).collect();
            let mut asg = Assignment::new();
            for (i, &v) in inputs.iter().enumerate() {
                asg.set(i as u32, v);
            }
            let expected = formula.eval(&inputs);
            assert_eq!(
                m.eval(bdd, &asg),
                expected,
                "formula {formula:?} at {bits:05b}"
            );
            if expected {
                count += 1;
            }
        }
        assert_eq!(m.sat_count(bdd), count);
        // Every cube of the BDD satisfies the formula.
        for cube in m.cubes(bdd) {
            let mut inputs = vec![false; FORMULA_VARS];
            for (var, value) in cube.iter() {
                inputs[var as usize] = value;
            }
            assert!(formula.eval(&inputs));
        }
    }
}

/// Builds `f` on a manager while interleaving full garbage collections at
/// pseudo-random points of the build sequence.  Only the handles a correct
/// client would keep alive are protected: the pending sibling of a binary
/// node while its brother builds, and the freshly built result across the
/// collection itself.
fn build_with_gc(f: &Formula, m: &mut BddManager, rng: &mut SplitMix64) -> msatpg::bdd::Bdd {
    let result = match f {
        Formula::Var(i) => m.var(&format!("x{i}")),
        Formula::Not(a) => {
            let ba = build_with_gc(a, m, rng);
            m.not(ba)
        }
        Formula::And(a, b) => {
            let ba = build_with_gc(a, m, rng);
            m.protect(ba);
            let bb = build_with_gc(b, m, rng);
            m.unprotect(ba);
            m.and(ba, bb)
        }
        Formula::Or(a, b) => {
            let ba = build_with_gc(a, m, rng);
            m.protect(ba);
            let bb = build_with_gc(b, m, rng);
            m.unprotect(ba);
            m.or(ba, bb)
        }
        Formula::Xor(a, b) => {
            let ba = build_with_gc(a, m, rng);
            m.protect(ba);
            let bb = build_with_gc(b, m, rng);
            m.unprotect(ba);
            m.xor(ba, bb)
        }
    };
    if rng.below(3) == 0 {
        m.protect(result);
        let _ = m.gc();
        m.unprotect(result);
    }
    result
}

/// Garbage collection is invisible: a build interleaved with `gc()` at
/// arbitrary points agrees with an uncollected build on every evaluation,
/// on the satisfying-assignment count, on the exact cube cover and on the
/// byte-for-byte DOT rendering.
#[test]
fn bdd_gc_interleaving_is_invisible() {
    use msatpg::bdd::{to_dot, Cube};
    let mut rng = SplitMix64::new(0x6C0);
    let mut collections = 0u64;
    for _ in 0..CASES {
        let formula = random_formula(&mut rng, FORMULA_VARS, 4);
        let mut plain = BddManager::new();
        let mut collected = BddManager::new();
        for i in 0..FORMULA_VARS {
            plain.var(&format!("x{i}"));
            collected.var(&format!("x{i}"));
        }
        let reference = formula.build(&mut plain);
        let built = build_with_gc(&formula, &mut collected, &mut rng);
        collections += collected.stats().gc_runs;
        for bits in 0..1u32 << FORMULA_VARS {
            let mut asg = Assignment::new();
            for b in 0..FORMULA_VARS {
                asg.set(b as u32, (bits >> b) & 1 == 1);
            }
            assert_eq!(
                collected.eval(built, &asg),
                plain.eval(reference, &asg),
                "formula {formula:?} at {bits:05b}"
            );
        }
        assert_eq!(collected.sat_count(built), plain.sat_count(reference));
        let collected_cubes: Vec<Cube> = collected.cubes(built).collect();
        let plain_cubes: Vec<Cube> = plain.cubes(reference).collect();
        assert_eq!(collected_cubes, plain_cubes, "cube covers diverge");
        assert_eq!(
            to_dot(&collected, built, "f"),
            to_dot(&plain, reference, "f"),
            "DOT rendering diverges after GC"
        );
    }
    assert!(
        collections > 0,
        "the interleaving must actually have collected"
    );
}

/// Adjacent-level swaps are invisible to the algebra: after every swap of a
/// random adjacent level pair, the BDD of a random formula still agrees
/// with brute-force evaluation on *every* assignment (exhaustive over all
/// 2^8 inputs), the satisfying-assignment count is unchanged, and the
/// manager passes the full canonical-form validator
/// (`BddManager::check_invariants`: var↔level permutation consistency,
/// regular high edges, reduction, strictly increasing child levels, exact
/// unique-table membership).  The protected root handle is never
/// renumbered — the original `Bdd` value keeps denoting the function.
#[test]
fn bdd_swap_adjacent_preserves_semantics_and_invariants() {
    const SWAP_VARS: usize = 8;
    let mut rng = SplitMix64::new(0x5A4B);
    for case in 0..CASES {
        let formula = random_formula(&mut rng, SWAP_VARS, 4);
        let mut m = BddManager::new();
        for i in 0..SWAP_VARS {
            m.var(&format!("x{i}"));
        }
        let f = formula.build(&mut m);
        m.protect(f);
        let expected_count = m.sat_count(f);
        for swap in 0..12 {
            let level = rng.below(SWAP_VARS - 1) as u32;
            m.swap_adjacent(level);
            m.check_invariants()
                .unwrap_or_else(|e| panic!("case {case} swap {swap} level {level}: {e}"));
            for bits in 0..1u32 << SWAP_VARS {
                let inputs: Vec<bool> = (0..SWAP_VARS).map(|b| (bits >> b) & 1 == 1).collect();
                let mut asg = Assignment::new();
                for (i, &v) in inputs.iter().enumerate() {
                    asg.set(i as u32, v);
                }
                assert_eq!(
                    m.eval(f, &asg),
                    formula.eval(&inputs),
                    "case {case} swap {swap} level {level} at {bits:08b}"
                );
            }
            assert_eq!(
                m.sat_count(f),
                expected_count,
                "case {case} swap {swap}: sat count drifted"
            );
        }
        m.unprotect(f);
    }
}

/// Builds `f` while interleaving garbage collections *and* full sifting
/// passes at pseudo-random points, protecting exactly what a correct
/// client would keep alive (sifting collects internally, so it has the
/// same root-protection contract as `gc`).  Returns the built handle and
/// accumulates the number of level swaps performed into `swaps`.
fn build_with_gc_and_sift(
    f: &Formula,
    m: &mut BddManager,
    rng: &mut SplitMix64,
    swaps: &mut u64,
) -> msatpg::bdd::Bdd {
    let result = match f {
        Formula::Var(i) => m.var(&format!("x{i}")),
        Formula::Not(a) => {
            let ba = build_with_gc_and_sift(a, m, rng, swaps);
            m.not(ba)
        }
        Formula::And(a, b) => {
            let ba = build_with_gc_and_sift(a, m, rng, swaps);
            m.protect(ba);
            let bb = build_with_gc_and_sift(b, m, rng, swaps);
            m.unprotect(ba);
            m.and(ba, bb)
        }
        Formula::Or(a, b) => {
            let ba = build_with_gc_and_sift(a, m, rng, swaps);
            m.protect(ba);
            let bb = build_with_gc_and_sift(b, m, rng, swaps);
            m.unprotect(ba);
            m.or(ba, bb)
        }
        Formula::Xor(a, b) => {
            let ba = build_with_gc_and_sift(a, m, rng, swaps);
            m.protect(ba);
            let bb = build_with_gc_and_sift(b, m, rng, swaps);
            m.unprotect(ba);
            m.xor(ba, bb)
        }
    };
    if rng.below(3) == 0 {
        m.protect(result);
        if rng.bool() {
            let _ = m.gc();
        } else {
            *swaps += m.sift().swaps as u64;
        }
        m.unprotect(result);
    }
    result
}

/// Sifting interleaved with garbage collection is invisible to the
/// algebra: a build sprinkled with `gc()` and `sift()` calls agrees with
/// the never-reordered build on every evaluation and on the
/// satisfying-assignment count; two identical interleaved runs are
/// byte-identical in their DOT renderings and cube covers (reordering is
/// deterministic); and one more sift on the finished manager neither
/// renumbers the protected root nor breaks the canonical invariants.
#[test]
fn bdd_sift_and_gc_interleaving_is_invisible() {
    use msatpg::bdd::{to_dot, Cube};
    let mut swaps = 0u64;
    for case in 0..CASES {
        let seed = 0x51F7u64.wrapping_add((case as u64) << 8);
        let formula = {
            let mut frng = SplitMix64::new(seed);
            random_formula(&mut frng, FORMULA_VARS, 4)
        };
        let mut plain = BddManager::new();
        for i in 0..FORMULA_VARS {
            plain.var(&format!("x{i}"));
        }
        let reference = formula.build(&mut plain);
        let mut run = || {
            let mut rng = SplitMix64::new(seed ^ 0xABCD_EF01);
            let mut m = BddManager::new();
            for i in 0..FORMULA_VARS {
                m.var(&format!("x{i}"));
            }
            let built = build_with_gc_and_sift(&formula, &mut m, &mut rng, &mut swaps);
            (m, built)
        };
        let (mut first, built) = run();
        let (second, twin) = run();
        assert_eq!(
            to_dot(&first, built, "f"),
            to_dot(&second, twin, "f"),
            "case {case}: twin interleaved runs diverge in DOT"
        );
        let first_cubes: Vec<Cube> = first.cubes(built).collect();
        let twin_cubes: Vec<Cube> = second.cubes(twin).collect();
        assert_eq!(first_cubes, twin_cubes, "case {case}: twin cube covers");
        first
            .check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        // One more full sift on the finished manager: the protected root
        // still denotes the same function afterwards.
        first.protect(built);
        swaps += first.sift().swaps as u64;
        first
            .check_invariants()
            .unwrap_or_else(|e| panic!("case {case} after final sift: {e}"));
        for bits in 0..1u32 << FORMULA_VARS {
            let mut asg = Assignment::new();
            for b in 0..FORMULA_VARS {
                asg.set(b as u32, (bits >> b) & 1 == 1);
            }
            assert_eq!(
                first.eval(built, &asg),
                plain.eval(reference, &asg),
                "case {case} formula {formula:?} at {bits:05b}"
            );
        }
        assert_eq!(first.sat_count(built), plain.sat_count(reference));
        first.unprotect(built);
    }
    assert!(swaps > 0, "the interleaving must actually have reordered");
}

/// Shannon expansion: f = (x AND f|x=1) OR (!x AND f|x=0) for every variable.
#[test]
fn bdd_shannon_expansion() {
    let mut rng = SplitMix64::new(0x5A);
    for _ in 0..CASES {
        let formula = random_formula(&mut rng, FORMULA_VARS, 4);
        let var = rng.below(FORMULA_VARS);
        let mut m = BddManager::new();
        for i in 0..FORMULA_VARS {
            m.var(&format!("x{i}"));
        }
        let f = formula.build(&mut m);
        let v = var as u32;
        let f1 = m.restrict(f, v, true);
        let f0 = m.restrict(f, v, false);
        let x = m.literal(v, true);
        let nx = m.literal(v, false);
        let left = m.and(x, f1);
        let right = m.and(nx, f0);
        let rebuilt = m.or(left, right);
        assert_eq!(
            rebuilt, f,
            "Shannon expansion failed for {formula:?} on x{var}"
        );
    }
}

/// The 4-bit adder circuit computes a + b + cin for all operands.
#[test]
fn adder_matches_arithmetic() {
    let adder = circuits::adder4();
    let mut rng = SplitMix64::new(0xADD);
    for _ in 0..CASES {
        let (a, b, cin) = (
            rng.below(16) as u32,
            rng.below(16) as u32,
            rng.below(2) as u32,
        );
        let mut pattern = Vec::new();
        for i in 0..4 {
            pattern.push((a >> i) & 1 == 1);
        }
        for i in 0..4 {
            pattern.push((b >> i) & 1 == 1);
        }
        pattern.push(cin == 1);
        let out = adder.evaluate(&pattern).unwrap();
        let mut value = 0u32;
        for (i, &bit) in out.iter().enumerate() {
            if bit {
                value |= 1 << i;
            }
        }
        assert_eq!(value, a + b + cin);
    }
}

/// Parallel-pattern simulation agrees with serial simulation on the Figure-3
/// circuit for arbitrary pattern batches.
#[test]
fn parallel_simulation_matches_serial() {
    let circuit = circuits::figure3_circuit();
    let sim = Simulator::new(&circuit);
    let mut rng = SplitMix64::new(0x9A12);
    for _ in 0..CASES {
        let batch = 1 + rng.below(31);
        let patterns: Vec<Vec<bool>> = (0..batch).map(|_| random_pattern(&mut rng, 4)).collect();
        let words = sim.run_parallel(&patterns).unwrap();
        for (p, pattern) in patterns.iter().enumerate() {
            let serial = sim.run(pattern).unwrap();
            for (o, &word) in words.iter().enumerate() {
                assert_eq!((word >> p) & 1 == 1, serial[o]);
            }
        }
    }
}

/// The five-valued composite simulation is consistent with running the good
/// and the faulty two-valued simulations separately.
#[test]
fn composite_simulation_matches_good_and_faulty() {
    let circuit = circuits::figure3_circuit();
    let mut rng = SplitMix64::new(0xD);
    for _ in 0..CASES * 4 {
        let pattern = random_pattern(&mut rng, 4);
        let line = rng.below(9);
        let stuck = rng.bool();
        let signal = circuit.signals()[line];
        // Good and faulty two-valued simulations.
        let good = circuit.evaluate_all(&pattern).unwrap();
        let fault = if stuck {
            StuckAtFault::sa1(signal)
        } else {
            StuckAtFault::sa0(signal)
        };
        let detected = FaultSimulator::new(&circuit)
            .detects(fault, &pattern)
            .unwrap();
        // Only activated faults are interesting for the composite check.
        let good_at_line = good[line];
        if good_at_line == stuck {
            continue;
        }
        let composite = Logic::from_pair(good_at_line, stuck);
        let mut sim = CompositeSimulator::new(&circuit);
        sim.force(signal, composite);
        let inputs: Vec<Logic> = pattern.iter().map(|&b| Logic::from(b)).collect();
        let propagates = sim.propagates_fault(&inputs).unwrap();
        assert_eq!(propagates, detected);
    }
}

/// Every vector produced by the OBDD ATPG for a fault of the Figure-3
/// circuit is confirmed by fault simulation.
#[test]
fn atpg_vectors_are_confirmed_by_simulation() {
    let circuit = circuits::figure3_circuit();
    let faults = FaultList::all(&circuit);
    for &fault in faults.faults() {
        let mut atpg = DigitalAtpg::new(&circuit);
        match atpg.generate(fault) {
            TestOutcome::Detected(vector) => {
                let sim = FaultSimulator::new(&circuit);
                assert!(sim.detects(fault, &vector.concretize(false)).unwrap());
                assert!(sim.detects(fault, &vector.concretize(true)).unwrap());
            }
            TestOutcome::Untestable => {
                // The stand-alone Figure-3 circuit is fully testable.
                panic!("unexpected untestable fault {fault}");
            }
            TestOutcome::PreviouslyDetected => {}
            TestOutcome::Degraded(_) | TestOutcome::Aborted(_) => {
                // No budget or cancel token is armed on this engine.
                panic!("unexpected governed outcome for fault {fault}");
            }
        }
    }
}

/// Flash-converter output codes are always thermometer codes and are
/// monotone in the input voltage.
#[test]
fn flash_codes_are_thermometer_and_monotone() {
    let adc = FlashAdc::uniform(15, 4.0).unwrap();
    let codes = thermometer_codes(15);
    let mut rng = SplitMix64::new(0xF1A5);
    for _ in 0..CASES {
        let vin_a = rng.f64() * 4.0;
        let vin_b = rng.f64() * 4.0;
        let code_a = adc.convert(vin_a);
        let code_b = adc.convert(vin_b);
        assert!(codes.allows(&code_a));
        assert!(codes.allows(&code_b));
        if vin_a <= vin_b {
            assert!(adc.convert_to_count(vin_a) <= adc.convert_to_count(vin_b));
        }
    }
}

/// Ladder tap voltages are strictly increasing and bounded by the rails, for
/// arbitrary positive resistor values.
#[test]
fn ladder_taps_are_monotone() {
    let mut rng = SplitMix64::new(0x1ADD);
    for _ in 0..CASES {
        let count = 2 + rng.below(10);
        let resistors: Vec<f64> = (0..count).map(|_| 1.0 + rng.f64() * 99.0).collect();
        let ladder = ResistorLadder::new(resistors, 5.0).unwrap();
        let taps = ladder.tap_voltages();
        for window in taps.windows(2) {
            assert!(window[0] < window[1]);
        }
        assert!(taps.first().copied().unwrap_or(0.1) > 0.0);
        assert!(taps.last().copied().unwrap_or(0.0) < 5.0);
    }
}

/// The PPSFP fault-simulation engine and the serial reference detect exactly
/// the same fault sets (and therefore report the same coverage) on the
/// ISCAS-style benchmark circuits, across pattern-set sizes that exercise
/// partial and multiple 64-pattern words.
#[test]
fn ppsfp_coverage_matches_serial_on_benchmarks() {
    use msatpg::digital::benchmarks;
    let mut rng = SplitMix64::new(0x99F5);
    for name in ["c432", "c499", "c880"] {
        let n = benchmarks::by_name(name).unwrap();
        let faults = FaultList::collapsed(&n);
        let sim = FaultSimulator::new(&n);
        for &count in &[1usize, 17, 64, 90] {
            let patterns: Vec<Vec<bool>> = (0..count)
                .map(|_| random_pattern(&mut rng, n.primary_inputs().len()))
                .collect();
            let ppsfp = sim.run(&faults, &patterns).unwrap();
            let serial = sim.run_serial(&faults, &patterns).unwrap();
            let mut d1 = ppsfp.detected().to_vec();
            let mut d2 = serial.detected().to_vec();
            d1.sort();
            d2.sort();
            assert_eq!(d1, d2, "{name}: detected sets differ for {count} patterns");
            assert_eq!(
                ppsfp.undetected().len(),
                serial.undetected().len(),
                "{name}: undetected counts differ for {count} patterns"
            );
            assert!((ppsfp.coverage() - serial.coverage()).abs() < 1e-12);
        }
    }
}

/// Patching element values through a live MNA engine gives the same
/// frequency response as stamping a freshly deviated circuit, for random
/// deviations of random elements of the band-pass filter.
#[test]
fn patched_mna_matches_rebuilt_circuit() {
    use msatpg::analog::filters;
    use msatpg::analog::mna::Mna;
    let filter = filters::second_order_band_pass();
    let circuit = filter.circuit();
    let output = filter.output_node();
    let passive = circuit.passive_elements();
    let mna = Mna::new(circuit);
    let mut rng = SplitMix64::new(0xACDC);
    for _ in 0..24 {
        let element = passive[rng.below(passive.len())];
        let factor = 0.25 + rng.f64() * 3.0; // deviations from −75 % to +225 %
        mna.scale_value(element, factor);
        let mut rebuilt = circuit.clone();
        rebuilt.scale_value(element, factor);
        let reference = Mna::new(&rebuilt);
        for &freq in &[10.0, 400.0, 1.0e3, 2.5e3, 40.0e3] {
            let a = mna.gain("Vin", output, freq).unwrap();
            let b = reference.gain("Vin", output, freq).unwrap();
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "patched {a} vs rebuilt {b} at {freq} Hz"
            );
        }
        mna.reset_values();
    }
}

/// The worker pool must be invisible in every output: whatever the thread
/// count, a parallel run is byte-identical to the serial run.  `cpu` is the
/// only [`AtpgReport`] field allowed to differ (wall-clock is inherently
/// non-deterministic, even between two serial runs).
fn assert_reports_identical(a: &AtpgReport, b: &AtpgReport, context: &str) {
    assert_eq!(a.circuit, b.circuit, "{context}: circuit");
    assert_eq!(a.total_faults, b.total_faults, "{context}: total_faults");
    assert_eq!(a.detected, b.detected, "{context}: detected");
    assert_eq!(a.untestable, b.untestable, "{context}: untestable");
    assert_eq!(a.degraded, b.degraded, "{context}: degraded");
    assert_eq!(a.aborted, b.aborted, "{context}: aborted");
    assert_eq!(a.vectors, b.vectors, "{context}: vectors");
    assert_eq!(a.constrained, b.constrained, "{context}: constrained");
}

/// The policy grid of the determinism suite.  `Auto` is included so the CI
/// thread matrix (which sets `MSATPG_THREADS` to 1, 2 and 8 around the same
/// test binary) exercises genuinely different worker counts without any
/// code change.
fn determinism_policies() -> [ExecPolicy; 4] {
    [
        ExecPolicy::Threads(1),
        ExecPolicy::Threads(2),
        ExecPolicy::Threads(8),
        ExecPolicy::Auto,
    ]
}

/// Parallel PPSFP fault simulation detects exactly the same faults in
/// exactly the same order as the serial engine, for thread counts 1, 2,
/// 8 and `Auto` (whatever `MSATPG_THREADS` resolves it to), with and
/// without fault dropping.
#[test]
fn parallel_ppsfp_is_byte_identical_to_serial() {
    use msatpg::digital::benchmarks;
    let mut rng = SplitMix64::new(0x3A11);
    for name in ["c432", "c880"] {
        let n = benchmarks::by_name(name).unwrap();
        let faults = FaultList::collapsed(&n);
        let patterns: Vec<Vec<bool>> = (0..150)
            .map(|_| random_pattern(&mut rng, n.primary_inputs().len()))
            .collect();
        for dropping in [true, false] {
            let reference = FaultSimulator::new(&n)
                .with_fault_dropping(dropping)
                .run(&faults, &patterns)
                .unwrap();
            for policy in determinism_policies() {
                let parallel = FaultSimulator::new(&n)
                    .with_fault_dropping(dropping)
                    .with_policy(policy)
                    .run(&faults, &patterns)
                    .unwrap();
                // Order-sensitive comparison: the detected vector, not the
                // detected set.
                assert_eq!(
                    parallel.detected(),
                    reference.detected(),
                    "{name} dropping={dropping} policy={policy:?}"
                );
                assert_eq!(parallel.undetected(), reference.undetected());
            }
        }
    }
}

/// The widened PPSFP blocks (256- and 512-bit) are byte-identical to the
/// one-lane engine on random netlists — same detected *vector* (order
/// included), same undetected list, same pattern count — across pattern
/// batches that straddle the wide block boundaries, with and without fault
/// dropping, serial and pooled.  The serial per-pattern reference anchors
/// the detected *set* so the whole word-level family cannot drift together.
#[test]
fn wide_ppsfp_is_byte_identical_to_one_lane_on_random_netlists() {
    use msatpg::digital::fault_sim::WordWidth;
    let mut rng = SplitMix64::new(0x51D3);
    for case in 0..24 {
        let n = random_netlist(&mut rng, case);
        let faults = FaultList::collapsed(&n);
        // 1..=600 patterns: covers partial lanes, exact multiples and
        // several 512-bit blocks.
        let count = 1 + rng.below(600);
        let patterns: Vec<Vec<bool>> = (0..count)
            .map(|_| random_pattern(&mut rng, n.primary_inputs().len()))
            .collect();
        for dropping in [true, false] {
            let reference = FaultSimulator::new(&n)
                .with_fault_dropping(dropping)
                .with_word_width(WordWidth::W1)
                .run(&faults, &patterns)
                .unwrap();
            let serial = FaultSimulator::new(&n)
                .with_fault_dropping(dropping)
                .run_serial(&faults, &patterns)
                .unwrap();
            let mut set = reference.detected().to_vec();
            let mut serial_set = serial.detected().to_vec();
            set.sort();
            serial_set.sort();
            assert_eq!(
                set, serial_set,
                "case {case} dropping={dropping}: word engine vs serial"
            );
            for width in [WordWidth::W4, WordWidth::W8] {
                for policy in [ExecPolicy::Threads(1), ExecPolicy::Threads(3)] {
                    let wide = FaultSimulator::new(&n)
                        .with_fault_dropping(dropping)
                        .with_word_width(width)
                        .with_policy(policy)
                        .run(&faults, &patterns)
                        .unwrap();
                    let tag =
                        format!("case {case} dropping={dropping} {width:?} policy={policy:?}");
                    assert_eq!(wide.detected(), reference.detected(), "{tag}");
                    assert_eq!(wide.undetected(), reference.undetected(), "{tag}");
                    assert_eq!(wide.patterns_used(), reference.patterns_used(), "{tag}");
                }
            }
        }
    }
}

/// A whole PPSFP campaign spawns exactly one worker set, no matter how many
/// 64-pattern blocks (pool rounds) it runs — the persistent-pool guarantee
/// that replaced the spawn-per-block scoped pool.
#[test]
fn ppsfp_campaign_spawns_one_worker_set() {
    use msatpg::digital::benchmarks;
    use msatpg::digital::fault_sim::{FaultCones, WordWidth};
    use msatpg::exec::WorkerPool;
    let mut rng = SplitMix64::new(0x5EED);
    let n = benchmarks::by_name("c880").unwrap();
    let faults = FaultList::collapsed(&n);
    let cones = FaultCones::build(&n, faults.faults().iter().map(|f| f.signal));
    // 300 patterns = 5 blocks; every block is one barrier-separated round.
    let patterns: Vec<Vec<bool>> = (0..300)
        .map(|_| random_pattern(&mut rng, n.primary_inputs().len()))
        .collect();
    for policy in determinism_policies() {
        let pool = WorkerPool::new(policy);
        // The barrier count below encodes the 64-pattern (one-lane) block
        // structure, so the width is pinned: under the CI width matrix a
        // 512-bit block would fold the 5 rounds into 1.
        let result = FaultSimulator::new(&n)
            .with_policy(policy)
            .with_word_width(WordWidth::W1)
            .run_with_cones_on(&pool, &faults, &patterns, &cones)
            .unwrap();
        assert!(result.patterns_used() == 300);
        let stats = pool.stats();
        let workers = policy.workers() as u64;
        if workers > 1 {
            assert_eq!(
                stats.spawns, workers,
                "{policy:?}: one worker set for the whole campaign"
            );
            assert_eq!(stats.barriers, 5, "{policy:?}: one barrier per block");
        } else {
            assert_eq!(stats.spawns, 0, "{policy:?}: serial path spawns nothing");
        }
    }
}

/// The parallel deviation analysis produces a bit-identical deviation matrix
/// for thread counts 1, 2 and 8, in nominal and worst-case mode.
#[test]
fn parallel_deviation_analysis_is_byte_identical_to_serial() {
    use msatpg::analog::filters;
    use msatpg::analog::sensitivity::WorstCaseAnalysis;
    let filter = filters::second_order_band_pass();
    // The two gain parameters keep the matrix small enough for a test while
    // still exercising bracketing, bisection and masking.
    let specs = &filter.parameters()[..2];
    for worst_case in [false, true] {
        let reference = WorstCaseAnalysis::new(filter.circuit(), specs)
            .with_worst_case(worst_case)
            .run()
            .unwrap();
        for policy in determinism_policies() {
            let parallel = WorstCaseAnalysis::new(filter.circuit(), specs)
                .with_worst_case(worst_case)
                .with_policy(policy)
                .run()
                .unwrap();
            // DeviationRow compares f64 thresholds with ==: bit-identity.
            assert_eq!(
                parallel.rows(),
                reference.rows(),
                "worst_case={worst_case} policy={policy:?}"
            );
        }
    }
}

/// The full mixed-signal flow — constrained and unconstrained digital ATPG,
/// deviation analysis, analog tests and conversion coverage — produces a
/// byte-identical [`msatpg::TestPlan`] for thread counts 1, 2 and 8.
#[test]
fn parallel_test_plan_is_byte_identical_to_serial() {
    use msatpg::analog::filters;
    use msatpg::conversion::constraints::AllowedCodes;
    use msatpg::core::test_plan::AtpgOptions;
    use msatpg::core::ConverterBlock;
    use msatpg::{MixedCircuit, MixedSignalAtpg};

    let figure4 = || {
        let adc = FlashAdc::uniform(2, 3.0).unwrap();
        let mut mixed = MixedCircuit::new(
            "figure4",
            filters::second_order_band_pass(),
            ConverterBlock::Flash(adc),
            circuits::figure3_circuit(),
        );
        mixed.connect_in_order(&["l0", "l2"]).unwrap();
        mixed.set_allowed_codes(AllowedCodes::new(
            2,
            vec![vec![true, false], vec![false, true], vec![true, true]],
        ));
        mixed
    };
    let reference = MixedSignalAtpg::new(figure4()).run().unwrap();
    for policy in determinism_policies() {
        let plan = MixedSignalAtpg::new(figure4())
            .with_options(AtpgOptions {
                exec: policy,
                ..AtpgOptions::default()
            })
            .run()
            .unwrap();
        assert_reports_identical(&plan.digital, &reference.digital, "constrained");
        assert_reports_identical(
            &plan.digital_unconstrained,
            &reference.digital_unconstrained,
            "unconstrained",
        );
        assert_eq!(plan.analog, reference.analog, "policy={policy:?}");
        assert_eq!(
            plan.analog_deviations.rows(),
            reference.analog_deviations.rows(),
            "policy={policy:?}"
        );
        assert_eq!(plan.conversion, reference.conversion, "policy={policy:?}");
    }
}

/// Voltage-divider DC analysis matches the analytic expression for arbitrary
/// resistor values.
#[test]
fn mna_divider_matches_theory() {
    use msatpg::analog::mna::Mna;
    use msatpg::analog::netlist::Circuit;
    let mut rng = SplitMix64::new(0xD1);
    for _ in 0..CASES {
        let r1 = 10.0 + rng.f64() * 1.0e6;
        let r2 = 10.0 + rng.f64() * 1.0e6;
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 1.0, 1.0);
        c.resistor("R1", vin, vout, r1);
        c.resistor("R2", vout, Circuit::GROUND, r2);
        let sol = Mna::new(&c).solve_dc().unwrap();
        let expected = r2 / (r1 + r2);
        assert!((sol.voltage(vout).re - expected).abs() < 1e-9);
    }
}

/// The seeded fault-injection harness: under injected panics (isolated),
/// simulated budget exhaustion (degraded via random patterns) and injected
/// cancellations, the governed ATPG report is still byte-identical across
/// every thread count — including `Auto`, which the CI matrix pins to
/// `MSATPG_THREADS=1/2/8` around this very binary.  The injector is a pure
/// function of `(seed, fault index)`, so the same faults are hit no matter
/// how the work is scheduled.
#[test]
fn chaos_governed_atpg_reports_are_byte_identical_across_policies() {
    use msatpg::core::digital_atpg::DegradePolicy;
    use msatpg::exec::{ChaosInjector, PanicPolicy};

    let circuit = circuits::adder4();
    let faults = FaultList::collapsed(&circuit);
    let sim = FaultSimulator::new(&circuit);
    for seed in [0x01u64, 0xA5A5, 0xDEAD_BEEF] {
        let chaos = ChaosInjector::new(seed)
            .with_panic_rate(7)
            .with_budget_rate(5)
            .with_cancel_rate(11);
        let build = || {
            DigitalAtpg::new(&circuit)
                .with_chaos(chaos)
                .with_panic_policy(PanicPolicy::Isolate)
                .with_degradation(DegradePolicy {
                    seed,
                    patterns: 128,
                })
        };
        let reference = build().run(&faults).unwrap();
        assert_eq!(
            reference.detected + reference.untestable.len() + reference.aborted.len(),
            faults.len(),
            "seed={seed:#x}: every fault is accounted for"
        );
        // Both deterministic and degraded vectors are real tests.
        for vector in &reference.vectors {
            assert!(
                sim.detects(vector.fault, &vector.concretize(false))
                    .unwrap(),
                "seed={seed:#x}: vector fails to detect its fault"
            );
        }
        for policy in determinism_policies() {
            let report = build().with_policy(policy).run(&faults).unwrap();
            assert_reports_identical(
                &report,
                &reference,
                &format!("chaos seed={seed:#x} policy={policy:?}"),
            );
        }
    }
}

/// The pattern-block width is invisible in campaign reports: a governed
/// chaos campaign — panics isolated, budgets exhausted into degraded
/// random-pattern vectors (the code path where the width actually decides
/// which patterns are batched per cone walk) — produces a byte-identical
/// [`AtpgReport`] for every `MSATPG_WORD_WIDTH` × thread-count combination.
#[test]
fn governed_atpg_reports_are_byte_identical_across_word_widths() {
    use msatpg::core::digital_atpg::DegradePolicy;
    use msatpg::digital::fault_sim::WordWidth;
    use msatpg::exec::{ChaosInjector, PanicPolicy};

    let circuit = circuits::adder4();
    let faults = FaultList::collapsed(&circuit);
    for seed in [0x07u64, 0xBADC_AB1E] {
        let build = |width: WordWidth| {
            DigitalAtpg::new(&circuit)
                .with_chaos(
                    ChaosInjector::new(seed)
                        .with_panic_rate(7)
                        .with_budget_rate(3)
                        .with_cancel_rate(11),
                )
                .with_panic_policy(PanicPolicy::Isolate)
                .with_degradation(DegradePolicy {
                    seed,
                    // Three 64-bit words, under one 256-bit block: the wide
                    // verifier must still pick the same first detecting
                    // pattern the narrow one finds.
                    patterns: 192,
                })
                .with_word_width(width)
        };
        let reference = build(WordWidth::W1).run(&faults).unwrap();
        assert!(
            !reference.degraded.is_empty(),
            "seed={seed:#x}: the chaos rates must actually degrade faults"
        );
        for width in [WordWidth::W1, WordWidth::W4, WordWidth::W8] {
            for policy in determinism_policies() {
                let report = build(width).with_policy(policy).run(&faults).unwrap();
                assert_reports_identical(
                    &report,
                    &reference,
                    &format!("seed={seed:#x} width={width:?} policy={policy:?}"),
                );
            }
        }
    }
}

/// A scratch file under the system temp directory, unique per test and
/// case (the property loops write/read the same slot repeatedly).
fn scratch_file(tag: &str, case: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "msatpg-proptest-{}-{tag}-{case}",
        std::process::id()
    ))
}

/// Generates a random combinational netlist: a layer of primary inputs
/// followed by gates drawing from every already-defined signal, with a
/// random subset of gates (always at least the last) marked as outputs.
fn random_netlist(rng: &mut SplitMix64, case: usize) -> msatpg::digital::netlist::Netlist {
    use msatpg::digital::gate::GateKind;
    use msatpg::digital::netlist::Netlist;
    const BINARY: [GateKind; 6] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];
    let mut n = Netlist::new(&format!("rand{case}"));
    let inputs = 2 + rng.below(5);
    let mut signals = Vec::new();
    for i in 0..inputs {
        signals.push(n.input(&format!("i{i}")));
    }
    let gates = 1 + rng.below(12);
    let mut gate_ids = Vec::new();
    for g in 0..gates {
        let name = format!("g{g}");
        let id = if rng.below(4) == 0 {
            let kind = if rng.bool() {
                GateKind::Not
            } else {
                GateKind::Buf
            };
            n.gate(kind, &name, &[signals[rng.below(signals.len())]])
        } else {
            let kind = BINARY[rng.below(BINARY.len())];
            let a = signals[rng.below(signals.len())];
            let b = signals[rng.below(signals.len())];
            n.gate(kind, &name, &[a, b])
        };
        signals.push(id);
        gate_ids.push(id);
    }
    // The last gate is always an output; earlier gates join at random.
    let last = gate_ids.len() - 1;
    for (g, &id) in gate_ids.iter().enumerate() {
        if g == last || rng.below(3) == 0 {
            n.mark_output(id);
        }
    }
    n
}

/// Random netlists survive the crash-consistent store round trip with
/// identical structure (the `.bench` rendering is byte-identical) and
/// identical behavior on random patterns.
#[test]
fn netlist_store_roundtrip_preserves_structure_and_behavior() {
    use msatpg::core::store::{load_netlist, save_netlist};
    use msatpg::digital::bench_format;
    let mut rng = SplitMix64::new(0x57_0E);
    for case in 0..CASES {
        let original = random_netlist(&mut rng, case);
        let path = scratch_file("netlist", 0);
        save_netlist(&path, &original).unwrap();
        let reloaded = load_netlist(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.name(), original.name());
        assert_eq!(
            bench_format::write(&reloaded),
            bench_format::write(&original),
            "case {case}: .bench rendering diverges"
        );
        for _ in 0..8 {
            let pattern = random_pattern(&mut rng, original.primary_inputs().len());
            assert_eq!(
                reloaded.evaluate(&pattern).unwrap(),
                original.evaluate(&pattern).unwrap(),
                "case {case}: behavior diverges"
            );
        }
    }
}

/// Governed chaos campaigns — the richest reports the engine can produce,
/// with detected, previously-detected, untestable, degraded and all three
/// abort flavors — survive the report store round trip field-for-field,
/// and re-saving the reloaded report is byte-identical on disk.
#[test]
fn report_store_roundtrip_is_lossless() {
    use msatpg::core::digital_atpg::DegradePolicy;
    use msatpg::core::store::{load_report, save_report};
    use msatpg::exec::{ChaosInjector, PanicPolicy};
    let circuit = circuits::adder4();
    let faults = FaultList::collapsed(&circuit);
    for seed in [0x11u64, 0xC0FFEE, 0xFEED_F00D] {
        let report = DigitalAtpg::new(&circuit)
            .with_chaos(
                ChaosInjector::new(seed)
                    .with_panic_rate(7)
                    .with_budget_rate(5)
                    .with_cancel_rate(11),
            )
            .with_panic_policy(PanicPolicy::Isolate)
            .with_degradation(DegradePolicy { seed, patterns: 64 })
            .run(&faults)
            .unwrap();
        let path = scratch_file("report", seed as usize & 0xff);
        save_report(&path, &circuit, &report).unwrap();
        let reloaded = load_report(&path, &circuit).unwrap();
        assert_reports_identical(&reloaded, &report, &format!("seed={seed:#x}"));
        assert_eq!(reloaded.cpu, report.cpu, "cpu nanoseconds round trip");
        // Idempotence: saving the reloaded report reproduces the file.
        let first = std::fs::read(&path).unwrap();
        save_report(&path, &circuit, &reloaded).unwrap();
        let second = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(first, second, "seed={seed:#x}: re-save not byte-identical");
    }
}

/// BDDs built under pseudo-random GC interleavings survive the dddmp-style
/// text round trip into a *fresh* manager: same evaluation, same
/// satisfying-assignment count, same exact cube cover — and re-exporting
/// from the importing manager reproduces the text byte-for-byte.
#[test]
fn bdd_store_roundtrip_survives_gc_interleaving() {
    use msatpg::bdd::{export_bdd, import_bdd, Cube};
    let mut rng = SplitMix64::new(0xB0_D5);
    for case in 0..CASES {
        let formula = random_formula(&mut rng, FORMULA_VARS, 4);
        let mut source = BddManager::new();
        for i in 0..FORMULA_VARS {
            source.var(&format!("x{i}"));
        }
        let built = build_with_gc(&formula, &mut source, &mut rng);
        let text = export_bdd(&source, built, &format!("case{case}"));
        let mut target = BddManager::new();
        let (imported, name) = import_bdd(&mut target, &text).unwrap();
        assert_eq!(name, format!("case{case}"));
        for bits in 0..1u32 << FORMULA_VARS {
            let mut asg = Assignment::new();
            for b in 0..FORMULA_VARS {
                asg.set(b as u32, (bits >> b) & 1 == 1);
            }
            assert_eq!(
                target.eval(imported, &asg),
                source.eval(built, &asg),
                "case {case} formula {formula:?} at {bits:05b}"
            );
        }
        assert_eq!(target.sat_count(imported), source.sat_count(built));
        let imported_cubes: Vec<Cube> = target.cubes(imported).collect();
        let source_cubes: Vec<Cube> = source.cubes(built).collect();
        assert_eq!(imported_cubes, source_cubes, "case {case}: cube covers");
        assert_eq!(
            export_bdd(&target, imported, &format!("case{case}")),
            text,
            "case {case}: re-export not byte-identical"
        );
    }
}

/// Robustness of the long-lived executors: a worker pool that has relayed
/// injected job panics (isolated per chunk) and serviced a cancelled
/// campaign still runs a clean campaign byte-identically to a fresh pool,
/// and cancelled engines recover with a fresh token.
#[test]
fn pools_and_engines_stay_reusable_after_every_injected_failure() {
    use msatpg::digital::fault::StuckAtFault;
    use msatpg::exec::{CancelToken, ChaosInjector, PanicPolicy, WorkerPool};

    let circuit = circuits::adder4();
    let faults = FaultList::collapsed(&circuit);
    let clean_reference = DigitalAtpg::new(&circuit).run(&faults).unwrap();
    let is_deadline = |aborted: &[(StuckAtFault, msatpg::core::AbortReason)]| {
        aborted
            .iter()
            .all(|(_, r)| *r == msatpg::core::AbortReason::Deadline)
    };
    for policy in determinism_policies() {
        let pool = WorkerPool::new(policy).with_panic_policy(PanicPolicy::Isolate);
        for seed in 0..3u64 {
            // Injected worker panics, isolated to their fault targets.
            let chaotic = DigitalAtpg::new(&circuit)
                .with_chaos(ChaosInjector::new(seed).with_panic_rate(3))
                .with_panic_policy(PanicPolicy::Isolate)
                .run_on(&pool, &faults)
                .unwrap();
            assert_eq!(
                chaotic.detected + chaotic.untestable.len() + chaotic.aborted.len(),
                faults.len()
            );
            // A campaign cancelled after a few targets.
            let cancelled = DigitalAtpg::new(&circuit)
                .with_cancel_token(CancelToken::with_step_quota(seed + 2))
                .run_on(&pool, &faults)
                .unwrap();
            assert!(cancelled.aborted_count() > 0);
            assert!(is_deadline(&cancelled.aborted));
            // The same pool then runs a clean campaign: no residue.
            let clean = DigitalAtpg::new(&circuit).run_on(&pool, &faults).unwrap();
            assert_reports_identical(
                &clean,
                &clean_reference,
                &format!("after chaos seed={seed} policy={policy:?}"),
            );
        }
    }
}
