//! Property-based tests on the core substrates: BDD algebra against
//! brute-force truth tables, ATPG vectors against fault simulation, logic
//! simulation against the D-algebra, analog solver against circuit theory,
//! and the conversion block's code space.

use proptest::prelude::*;

use msatpg::bdd::{Assignment, BddManager};
use msatpg::conversion::constraints::thermometer_codes;
use msatpg::conversion::{FlashAdc, ResistorLadder};
use msatpg::core::digital_atpg::{DigitalAtpg, TestOutcome};
use msatpg::digital::circuits;
use msatpg::digital::fault::{FaultList, StuckAtFault};
use msatpg::digital::fault_sim::FaultSimulator;
use msatpg::digital::logic::Logic;
use msatpg::digital::sim::{CompositeSimulator, Simulator};

/// A tiny Boolean expression AST for generating random formulas.
#[derive(Clone, Debug)]
enum Formula {
    Var(usize),
    Not(Box<Formula>),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
    Xor(Box<Formula>, Box<Formula>),
}

impl Formula {
    fn eval(&self, inputs: &[bool]) -> bool {
        match self {
            Formula::Var(i) => inputs[*i],
            Formula::Not(a) => !a.eval(inputs),
            Formula::And(a, b) => a.eval(inputs) && b.eval(inputs),
            Formula::Or(a, b) => a.eval(inputs) || b.eval(inputs),
            Formula::Xor(a, b) => a.eval(inputs) ^ b.eval(inputs),
        }
    }

    fn build(&self, m: &mut BddManager) -> msatpg::bdd::Bdd {
        match self {
            Formula::Var(i) => m.var(&format!("x{i}")),
            Formula::Not(a) => {
                let ba = a.build(m);
                m.not(ba)
            }
            Formula::And(a, b) => {
                let (ba, bb) = (a.build(m), b.build(m));
                m.and(ba, bb)
            }
            Formula::Or(a, b) => {
                let (ba, bb) = (a.build(m), b.build(m));
                m.or(ba, bb)
            }
            Formula::Xor(a, b) => {
                let (ba, bb) = (a.build(m), b.build(m));
                m.xor(ba, bb)
            }
        }
    }
}

fn formula_strategy(vars: usize) -> impl Strategy<Value = Formula> {
    let leaf = (0..vars).prop_map(Formula::Var);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Formula::Not(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

const FORMULA_VARS: usize = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The BDD of a random formula agrees with brute-force evaluation on
    /// every input assignment, and its satisfying-assignment count matches.
    #[test]
    fn bdd_matches_truth_table(formula in formula_strategy(FORMULA_VARS)) {
        let mut m = BddManager::new();
        // Declare variables in a fixed order so eval positions match.
        for i in 0..FORMULA_VARS {
            m.var(&format!("x{i}"));
        }
        let bdd = formula.build(&mut m);
        let mut count = 0u128;
        for bits in 0..1u32 << FORMULA_VARS {
            let inputs: Vec<bool> = (0..FORMULA_VARS).map(|b| (bits >> b) & 1 == 1).collect();
            let mut asg = Assignment::new();
            for (i, &v) in inputs.iter().enumerate() {
                asg.set(i as u32, v);
            }
            let expected = formula.eval(&inputs);
            prop_assert_eq!(m.eval(bdd, &asg), expected);
            if expected {
                count += 1;
            }
        }
        prop_assert_eq!(m.sat_count(bdd), count);
        // Every cube of the BDD satisfies the formula.
        for cube in m.cubes(bdd) {
            let mut inputs = vec![false; FORMULA_VARS];
            for (var, value) in cube.iter() {
                inputs[var as usize] = value;
            }
            prop_assert!(formula.eval(&inputs));
        }
    }

    /// Shannon expansion: f = (x AND f|x=1) OR (!x AND f|x=0) for every
    /// variable.
    #[test]
    fn bdd_shannon_expansion(formula in formula_strategy(FORMULA_VARS), var in 0..FORMULA_VARS) {
        let mut m = BddManager::new();
        for i in 0..FORMULA_VARS {
            m.var(&format!("x{i}"));
        }
        let f = formula.build(&mut m);
        let v = var as u32;
        let f1 = m.restrict(f, v, true);
        let f0 = m.restrict(f, v, false);
        let x = m.literal(v, true);
        let nx = m.literal(v, false);
        let left = m.and(x, f1);
        let right = m.and(nx, f0);
        let rebuilt = m.or(left, right);
        prop_assert_eq!(rebuilt, f);
    }

    /// The 4-bit adder circuit computes a + b + cin for all operands.
    #[test]
    fn adder_matches_arithmetic(a in 0u32..16, b in 0u32..16, cin in 0u32..2) {
        let adder = circuits::adder4();
        let mut pattern = Vec::new();
        for i in 0..4 {
            pattern.push((a >> i) & 1 == 1);
        }
        for i in 0..4 {
            pattern.push((b >> i) & 1 == 1);
        }
        pattern.push(cin == 1);
        let out = adder.evaluate(&pattern).unwrap();
        let mut value = 0u32;
        for (i, &bit) in out.iter().enumerate() {
            if bit {
                value |= 1 << i;
            }
        }
        prop_assert_eq!(value, a + b + cin);
    }

    /// Parallel-pattern simulation agrees with serial simulation on the
    /// Figure-3 circuit for arbitrary pattern batches.
    #[test]
    fn parallel_simulation_matches_serial(patterns in prop::collection::vec(prop::collection::vec(any::<bool>(), 4), 1..32)) {
        let circuit = circuits::figure3_circuit();
        let sim = Simulator::new(&circuit);
        let words = sim.run_parallel(&patterns).unwrap();
        for (p, pattern) in patterns.iter().enumerate() {
            let serial = sim.run(pattern).unwrap();
            for (o, &word) in words.iter().enumerate() {
                prop_assert_eq!((word >> p) & 1 == 1, serial[o]);
            }
        }
    }

    /// The five-valued composite simulation is consistent with running the
    /// good and the faulty two-valued simulations separately.
    #[test]
    fn composite_simulation_matches_good_and_faulty(pattern in prop::collection::vec(any::<bool>(), 4), line in 0usize..9, stuck in any::<bool>()) {
        let circuit = circuits::figure3_circuit();
        let signal = circuit.signals()[line];
        // Good and faulty two-valued simulations.
        let good = circuit.evaluate_all(&pattern).unwrap();
        let fault = if stuck { StuckAtFault::sa1(signal) } else { StuckAtFault::sa0(signal) };
        let detected = FaultSimulator::new(&circuit).detects(fault, &pattern).unwrap();
        // Composite simulation: force the composite value corresponding to
        // (good value, stuck value) on the line.
        let good_at_line = good[line];
        prop_assume!(good_at_line != stuck); // only activated faults are interesting
        let composite = Logic::from_pair(good_at_line, stuck);
        let mut sim = CompositeSimulator::new(&circuit);
        sim.force(signal, composite);
        let inputs: Vec<Logic> = pattern.iter().map(|&b| Logic::from(b)).collect();
        let propagates = sim.propagates_fault(&inputs).unwrap();
        prop_assert_eq!(propagates, detected);
    }

    /// Every vector produced by the OBDD ATPG for a random fault of the
    /// Figure-3 circuit is confirmed by fault simulation.
    #[test]
    fn atpg_vectors_are_confirmed_by_simulation(fault_index in 0usize..18) {
        let circuit = circuits::figure3_circuit();
        let faults = FaultList::all(&circuit);
        let fault = faults.faults()[fault_index];
        let mut atpg = DigitalAtpg::new(&circuit);
        match atpg.generate(fault) {
            TestOutcome::Detected(vector) => {
                let sim = FaultSimulator::new(&circuit);
                prop_assert!(sim.detects(fault, &vector.concretize(false)).unwrap());
                prop_assert!(sim.detects(fault, &vector.concretize(true)).unwrap());
            }
            TestOutcome::Untestable => {
                // The stand-alone Figure-3 circuit is fully testable.
                prop_assert!(false, "unexpected untestable fault");
            }
            TestOutcome::PreviouslyDetected => {}
        }
    }

    /// Flash-converter output codes are always thermometer codes and are
    /// monotone in the input voltage.
    #[test]
    fn flash_codes_are_thermometer_and_monotone(vin_a in 0.0f64..4.0, vin_b in 0.0f64..4.0) {
        let adc = FlashAdc::uniform(15, 4.0).unwrap();
        let codes = thermometer_codes(15);
        let code_a = adc.convert(vin_a);
        let code_b = adc.convert(vin_b);
        prop_assert!(codes.allows(&code_a));
        prop_assert!(codes.allows(&code_b));
        if vin_a <= vin_b {
            prop_assert!(adc.convert_to_count(vin_a) <= adc.convert_to_count(vin_b));
        }
    }

    /// Ladder tap voltages are strictly increasing and bounded by the rails,
    /// for arbitrary positive resistor values.
    #[test]
    fn ladder_taps_are_monotone(resistors in prop::collection::vec(1.0f64..100.0, 2..12)) {
        let ladder = ResistorLadder::new(resistors, 5.0).unwrap();
        let taps = ladder.tap_voltages();
        for window in taps.windows(2) {
            prop_assert!(window[0] < window[1]);
        }
        prop_assert!(taps.first().copied().unwrap_or(0.1) > 0.0);
        prop_assert!(taps.last().copied().unwrap_or(0.0) < 5.0);
    }

    /// Voltage-divider DC analysis matches the analytic expression for
    /// arbitrary resistor values.
    #[test]
    fn mna_divider_matches_theory(r1 in 10.0f64..1.0e6, r2 in 10.0f64..1.0e6) {
        use msatpg::analog::netlist::Circuit;
        use msatpg::analog::mna::Mna;
        let mut c = Circuit::new();
        let vin = c.node("vin");
        let vout = c.node("vout");
        c.voltage_source("Vin", vin, Circuit::GROUND, 1.0, 1.0);
        c.resistor("R1", vin, vout, r1);
        c.resistor("R2", vout, Circuit::GROUND, r2);
        let sol = Mna::new(&c).solve_dc().unwrap();
        let expected = r2 / (r1 + r2);
        prop_assert!((sol.voltage(vout).re - expected).abs() < 1e-9);
    }
}
