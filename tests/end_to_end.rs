//! Cross-crate integration tests: the complete mixed-signal flow on the
//! paper's Figure-4 circuit and on the validation-board circuit.

use msatpg::analog::filters;
use msatpg::conversion::constraints::AllowedCodes;
use msatpg::conversion::{FlashAdc, SarAdc};
use msatpg::core::{AtpgOptions, ConverterBlock};
use msatpg::digital::circuits;
use msatpg::{MixedCircuit, MixedSignalAtpg};

fn figure4() -> MixedCircuit {
    let analog = filters::second_order_band_pass();
    let converter = ConverterBlock::Flash(FlashAdc::uniform(2, 3.0).unwrap());
    let digital = circuits::figure3_circuit();
    let mut mixed = MixedCircuit::new("figure4", analog, converter, digital);
    mixed.connect_in_order(&["l0", "l2"]).unwrap();
    mixed.set_allowed_codes(AllowedCodes::new(
        2,
        vec![vec![true, false], vec![false, true], vec![true, true]],
    ));
    mixed
}

#[test]
fn figure4_full_flow_reproduces_example_2() {
    let atpg = MixedSignalAtpg::new(figure4());
    let plan = atpg.run().expect("the full flow succeeds");

    // Digital block: fully testable alone, two undetectable collapsed faults
    // under the conversion-block constraint (the paper's Example 2).
    assert_eq!(plan.digital_unconstrained.untestable_count(), 0);
    assert_eq!(plan.digital.untestable_count(), 2);
    assert!(plan.digital.detected < plan.digital.total_faults);

    // Analog block: all eight passive elements are analyzed and most are
    // testable end-to-end through the comparators and the digital block.
    assert_eq!(plan.analog.len(), 8);
    assert!(plan.analog_coverage() >= 0.5);

    // Conversion block: the ladder of the 2-comparator flash converter has
    // three resistors, all covered.
    assert_eq!(plan.conversion.len(), 3);
    assert!(plan
        .conversion
        .iter()
        .all(|entry| entry.detectable_deviation.is_some()));
}

#[test]
fn figure4_constrained_vectors_respect_fc() {
    let atpg = MixedSignalAtpg::new(figure4());
    let report = atpg.digital_constrained().unwrap();
    let codes = atpg.circuit().allowed_codes();
    let digital = atpg.circuit().digital();
    let l0 = digital.find_signal("l0").unwrap();
    let l2 = digital.find_signal("l2").unwrap();
    let pi_order: Vec<_> = digital.primary_inputs().to_vec();
    for vector in &report.vectors {
        let pattern = vector.concretize(false);
        let l0_pos = pi_order.iter().position(|&s| s == l0).unwrap();
        let l2_pos = pi_order.iter().position(|&s| s == l2).unwrap();
        assert!(
            codes.allows(&[pattern[l0_pos], pattern[l2_pos]]),
            "vector {} violates the conversion-block constraint",
            vector.to_pattern_string()
        );
    }
}

#[test]
fn board_circuit_flow_runs_with_a_binary_converter() {
    let analog = filters::state_variable_filter();
    let mut mixed = MixedCircuit::new(
        "figure8",
        analog,
        ConverterBlock::Binary {
            adc: SarAdc::ad7820(),
            lines: 4,
        },
        circuits::adder4(),
    );
    mixed.connect_in_order(&["a0", "a1", "a2", "a3"]).unwrap();
    let atpg = MixedSignalAtpg::new(mixed).with_options(AtpgOptions {
        worst_case: false,
        ..AtpgOptions::default()
    });
    // A binary converter imposes no code constraint, so the digital block
    // keeps its stand-alone coverage.
    let constrained = atpg.digital_constrained().unwrap();
    let unconstrained = atpg.digital_unconstrained().unwrap();
    assert_eq!(
        constrained.untestable_count(),
        unconstrained.untestable_count()
    );
    assert_eq!(
        unconstrained.untestable_count(),
        0,
        "the adder is fully testable"
    );
    // The conversion plan is empty for binary converters (no ladder).
    assert!(atpg.conversion_tests().unwrap().is_empty());
}
