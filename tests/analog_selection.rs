//! Integration tests of the analog test-selection chain (Example 1 and the
//! Table-6 ladder coverage) across the analog and conversion crates.

use msatpg::analog::coverage::CoverageGraph;
use msatpg::analog::filters;
use msatpg::analog::params::measure;
use msatpg::analog::sensitivity::WorstCaseAnalysis;
use msatpg::conversion::fault::ladder_coverage;
use msatpg::conversion::ResistorLadder;

#[test]
fn band_pass_center_gain_depends_only_on_rd_and_rg() {
    // The Example-1 structure: the center-frequency gain A1 = Rd/Rg, so only
    // Rd and Rg deviations are detectable through A1, while A2 (gain at
    // 10 kHz, off-center) depends on every element.
    let filter = filters::second_order_band_pass();
    let gains = &filter.parameters()[..2]; // A1, A2
    let report = WorstCaseAnalysis::new(filter.circuit(), gains)
        .with_worst_case(false)
        .run()
        .unwrap();
    for element in ["R1", "R2", "R3", "R4", "C1", "C2"] {
        assert_eq!(
            report.deviation("A1", element),
            None,
            "A1 must not depend on {element}"
        );
    }
    assert!(report.deviation("A1", "Rd").is_some());
    assert!(report.deviation("A1", "Rg").is_some());
    // A2 (the 10 kHz gain, on the upper skirt) detects deviations in the
    // frequency-setting elements and in the input resistor; Rd only shapes
    // the damping and is covered through A1 instead.
    for element in ["R1", "R2", "R3", "R4", "Rg", "C1", "C2"] {
        assert!(
            report.deviation("A2", element).is_some(),
            "A2 must depend on {element}"
        );
    }
    // The two gains together cover every element (the paper's selected test
    // set {A1, A2}).
    let graph = CoverageGraph::from_report(&report);
    assert!(graph.uncoverable_elements().is_empty());
    let selection = graph.select_test_set();
    assert!((selection.coverage_ratio() - 1.0).abs() < 1e-12);
}

#[test]
fn band_pass_nominal_parameters_match_the_design() {
    let filter = filters::second_order_band_pass();
    let values: Vec<(String, f64)> = filter
        .parameters()
        .iter()
        .map(|p| (p.name.clone(), measure(filter.circuit(), p).unwrap()))
        .collect();
    let get = |name: &str| values.iter().find(|(n, _)| n == name).unwrap().1;
    // Center-frequency gain = Rd/Rg ≈ 3.18, center frequency ≈ 4.2 kHz, and
    // the cut-offs bracket the center frequency.
    assert!((get("A1") - 3.18).abs() < 0.1);
    assert!((get("f0") - 4168.0).abs() / 4168.0 < 0.05);
    assert!(get("fc1") < get("f0"));
    assert!(get("fc2") > get("f0"));
    assert!(
        get("A2") < get("A1"),
        "the 10 kHz gain is below the peak gain"
    );
}

#[test]
fn ladder_coverage_reproduces_table6_shape() {
    // Table 6: the detectable resistor deviation rises from both ends of the
    // ladder toward the middle.
    let ladder = ResistorLadder::uniform(16, 4.0).unwrap();
    let coverage = ladder_coverage(&ladder, 0.05, 50.0).unwrap();
    let all: Vec<usize> = (1..=15).collect();
    let assignment = coverage.best_assignment(&all);
    let deviations: Vec<f64> = assignment
        .iter()
        .map(|(_, best)| best.expect("all resistors coverable").1)
        .collect();
    // Monotone non-decreasing up to the middle, non-increasing afterwards
    // (allow small numerical slack).
    for window in deviations[..8].windows(2) {
        assert!(window[1] >= window[0] * 0.98, "rising half: {window:?}");
    }
    for window in deviations[8..].windows(2) {
        assert!(window[1] <= window[0] * 1.02, "falling half: {window:?}");
    }
    // The middle is several times harder than the ends.
    assert!(deviations[7] > deviations[0] * 3.0);
    assert!(deviations[7] > deviations[15] * 3.0);
}

#[test]
fn chebyshev_filter_parameters_are_measurable_and_sensible() {
    let filter = filters::fifth_order_chebyshev();
    let adc = measure(filter.circuit(), &filter.parameters()[0]).unwrap();
    let fc = measure(filter.circuit(), &filter.parameters()[1]).unwrap();
    assert!(adc > 0.5, "pass-band gain {adc}");
    assert!(fc > 400.0 && fc < 2000.0, "corner frequency {fc}");
    // The AC gains A1..A5 decrease monotonically in the transition band
    // region sampled near the corner... at least the last one is the
    // smallest of the passband samples.
    let gains: Vec<f64> = filter.parameters()[2..]
        .iter()
        .map(|p| measure(filter.circuit(), p).unwrap())
        .collect();
    assert_eq!(gains.len(), 5);
    assert!(gains.iter().all(|&g| g.is_finite() && g > 0.0));
}
