//! Acceptance test of crash-consistent persistence and checkpoint/resume
//! (this PR's headline scenario): the constrained c432 campaign is
//! interrupted by a step-quota cancel token, checkpointed, and resumed —
//! and the resumed report is identical to the uninterrupted one, down to
//! the serialized bytes, at every thread count.  Deterministic store chaos
//! (crash, torn write, bit flip) during checkpoint writes never leaves a
//! checkpoint behind that loads as anything but a valid snapshot or a
//! structured [`StoreError`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use msatpg::bdd::BddBudget;
use msatpg::conversion::constraints::{thermometer_codes, AllowedCodes};
use msatpg::conversion::FlashAdc;
use msatpg::core::digital_atpg::{AbortReason, AtpgReport, DigitalAtpg};
use msatpg::core::store::{load_checkpoint, save_report};
use msatpg::core::{CheckpointPolicy, ConverterBlock, CoreError, StoreError};
use msatpg::digital::benchmarks;
use msatpg::digital::circuits;
use msatpg::digital::fault::FaultList;
use msatpg::digital::fault_sim::WordWidth;
use msatpg::digital::netlist::SignalId;
use msatpg::exec::{CancelToken, ChaosInjector, ExecPolicy};
use msatpg::{MixedCircuit, MixedSignalAtpg};

/// A unique scratch path under the system temp directory.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "msatpg-ckpt-{}-{tag}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn assert_reports_identical(a: &AtpgReport, b: &AtpgReport, context: &str) {
    assert_eq!(a.circuit, b.circuit, "{context}: circuit");
    assert_eq!(a.total_faults, b.total_faults, "{context}: total_faults");
    assert_eq!(a.detected, b.detected, "{context}: detected");
    assert_eq!(a.untestable, b.untestable, "{context}: untestable");
    assert_eq!(a.degraded, b.degraded, "{context}: degraded");
    assert_eq!(a.aborted, b.aborted, "{context}: aborted");
    assert_eq!(a.vectors, b.vectors, "{context}: vectors");
    assert_eq!(a.constrained, b.constrained, "{context}: constrained");
}

/// Serializes a report with the wall-clock field zeroed (the only field
/// allowed to differ between two identical campaigns).
fn report_bytes(netlist: &msatpg::digital::netlist::Netlist, report: &AtpgReport) -> Vec<u8> {
    let mut normalized = report.clone();
    normalized.cpu = Duration::ZERO;
    let path = scratch("report-bytes");
    save_report(&path, netlist, &normalized).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// The headline scenario: a constrained c432 campaign under a tight node
/// budget is cancelled mid-run by a step quota, leaves a crash-consistent
/// checkpoint behind, and the resumed campaign — journaled prefix replayed,
/// aborted faults re-attempted under a fresh (quota-free) governor — is
/// byte-identical on disk to the campaign that was never interrupted, at
/// thread counts 1, 2 and 8.
#[test]
fn interrupted_c432_campaign_resumes_byte_identically() {
    let digital = benchmarks::c432();
    let faults = FaultList::collapsed(&digital);

    // The Table-4 constrained setup: 15 digital inputs driven through a
    // flash converter admitting thermometer codes only.
    let analog = msatpg::analog::filters::fifth_order_chebyshev();
    let converter = ConverterBlock::Flash(FlashAdc::uniform(15, 4.0).unwrap());
    let mut mixed = MixedCircuit::new("c432-mixed", analog, converter, digital.clone());
    mixed.connect_randomly(1995).unwrap();
    let lines: Vec<SignalId> = mixed.constrained_inputs();
    let codes: AllowedCodes = thermometer_codes(15);

    let engine = |budget: BddBudget| -> DigitalAtpg<'_> {
        DigitalAtpg::new(&digital)
            .with_constraints(&lines, &codes)
            .unwrap()
            .with_budget(budget)
    };

    // A budget barely above the protected baseline, so some faults abort
    // over resources too — the resumed run must re-attempt those under the
    // *same* budget and reproduce the same aborts.
    let baseline = engine(BddBudget::UNLIMITED).collect_garbage();
    let tight = BddBudget::UNLIMITED.with_max_live_nodes(baseline + baseline / 16);

    let reference = engine(tight).run(&faults).unwrap();
    let reference_bytes = report_bytes(&digital, &reference);

    // The interrupted campaign: the step quota fires after 25 targeted
    // faults (covered faults don't charge, so this is well inside the
    // campaign), the rest of the list becomes an `Aborted(Deadline)` tail,
    // and the final journal flush snapshots all of it.
    let path = scratch("c432");
    let interrupted = engine(tight)
        .with_cancel_token(CancelToken::with_step_quota(25))
        .with_checkpoint(CheckpointPolicy::default(), &path)
        .run(&faults)
        .unwrap();
    let deadline_tail = interrupted
        .aborted
        .iter()
        .filter(|(_, r)| *r == AbortReason::Deadline)
        .count();
    assert!(deadline_tail > 0, "the quota must actually interrupt");

    let snapshot = load_checkpoint(&path, &digital, faults.faults()).unwrap();
    assert_eq!(
        snapshot.outcomes.len(),
        faults.len(),
        "final flush is complete"
    );

    // The resume grid crosses thread policies with pattern-block widths:
    // the checkpoint was written by a default-width campaign, and replaying
    // it under 256/512-bit PPSFP verification must not move a single byte.
    for (policy, width) in [
        (ExecPolicy::Serial, WordWidth::W8),
        (ExecPolicy::Threads(2), WordWidth::W4),
        (ExecPolicy::Threads(8), WordWidth::W1),
        (ExecPolicy::Auto, WordWidth::Auto),
    ] {
        let resumed = engine(tight)
            .with_resume(snapshot.clone())
            .with_policy(policy)
            .with_word_width(width)
            .run(&faults)
            .unwrap();
        assert_reports_identical(
            &resumed,
            &reference,
            &format!("resume {policy:?} {width:?}"),
        );
        assert_eq!(
            report_bytes(&digital, &resumed),
            reference_bytes,
            "{policy:?} {width:?}: resumed report not byte-identical on disk"
        );
    }
    std::fs::remove_file(&path).ok();
}

/// The pattern-block width is invisible on disk: the same campaign
/// checkpointed at W = 1, 4 and 8 leaves byte-identical snapshot files
/// behind (outcomes are width-independent and no timing is journaled).
#[test]
fn checkpoint_files_are_byte_identical_across_word_widths() {
    let circuit = circuits::adder4();
    let faults = FaultList::collapsed(&circuit);
    let campaign = |width: WordWidth| {
        let path = scratch("width");
        DigitalAtpg::new(&circuit)
            .with_word_width(width)
            .with_checkpoint(CheckpointPolicy::default(), &path)
            .run(&faults)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    };
    let reference = campaign(WordWidth::W1);
    for width in [WordWidth::W4, WordWidth::W8] {
        assert_eq!(
            campaign(width),
            reference,
            "{width:?}: checkpoint bytes differ from the one-lane campaign"
        );
    }
}

/// A resume snapshot is validated against the campaign it claims to
/// continue: replaying a c432 checkpoint against a different circuit or
/// fault list is a structured [`CoreError::Store`], never a bad report.
#[test]
fn resume_snapshot_is_validated_against_the_campaign() {
    let circuit = circuits::adder4();
    let faults = FaultList::collapsed(&circuit);
    let path = scratch("validate");
    DigitalAtpg::new(&circuit)
        .with_checkpoint(CheckpointPolicy::default(), &path)
        .run(&faults)
        .unwrap();
    let snapshot = load_checkpoint(&path, &circuit, faults.faults()).unwrap();
    std::fs::remove_file(&path).ok();

    // Same snapshot, different circuit: refused before any work happens.
    let other = circuits::figure3_circuit();
    let other_faults = FaultList::collapsed(&other);
    let err = DigitalAtpg::new(&other)
        .with_resume(snapshot.clone())
        .run(&other_faults)
        .unwrap_err();
    assert!(
        matches!(err, CoreError::Store { .. }),
        "expected CoreError::Store, got {err:?}"
    );

    // Same circuit, different fault list (full vs collapsed): refused too.
    let full = FaultList::all(&circuit);
    let err = DigitalAtpg::new(&circuit)
        .with_resume(snapshot)
        .run(&full)
        .unwrap_err();
    assert!(matches!(err, CoreError::Store { .. }));
}

/// Deterministic store chaos — crashes before the atomic rename, torn
/// non-atomic writes, single bit flips — during checkpoint flushes: the
/// campaign itself is untouched, and the file left behind either loads as
/// a valid (possibly older) snapshot that resumes correctly, or as a
/// structured [`StoreError`]; nothing panics, nothing parses as garbage.
#[test]
fn store_chaos_never_leaves_an_unusable_checkpoint_behind() {
    let circuit = circuits::adder4();
    let faults = FaultList::collapsed(&circuit);
    let reference = DigitalAtpg::new(&circuit).run(&faults).unwrap();
    let policy = CheckpointPolicy {
        every: 8,
        on_abort: true,
        on_cancel: true,
    };
    for seed in 0..6u64 {
        let injectors = [
            ("crash", ChaosInjector::new(seed).with_crash_rate(2)),
            ("torn", ChaosInjector::new(seed).with_torn_write_rate(2)),
            ("bitflip", ChaosInjector::new(seed).with_bit_flip_rate(2)),
            (
                "mixed",
                ChaosInjector::new(seed)
                    .with_crash_rate(3)
                    .with_torn_write_rate(3)
                    .with_bit_flip_rate(3),
            ),
        ];
        for (kind, chaos) in injectors {
            let path = scratch(kind);
            let report = DigitalAtpg::new(&circuit)
                .with_chaos(chaos)
                .with_checkpoint(policy, &path)
                .run(&faults)
                .unwrap();
            // Store-class chaos corrupts files, never outcomes.
            assert_reports_identical(&report, &reference, &format!("{kind} seed={seed}"));
            match load_checkpoint(&path, &circuit, faults.faults()) {
                Ok(snapshot) => {
                    // A surviving snapshot is a usable prefix: resuming
                    // from it reproduces the reference exactly.
                    assert!(snapshot.outcomes.len() <= faults.len());
                    let resumed = DigitalAtpg::new(&circuit)
                        .with_resume(snapshot)
                        .run(&faults)
                        .unwrap();
                    assert_reports_identical(
                        &resumed,
                        &reference,
                        &format!("{kind} seed={seed} resumed"),
                    );
                }
                Err(
                    StoreError::Io { .. }
                    | StoreError::Truncated { .. }
                    | StoreError::Corrupt { .. }
                    | StoreError::VersionMismatch { .. },
                ) => {
                    // Structured refusal — the torn/flipped file was
                    // detected, not misparsed.
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Exhaustive single-fault corruption of a real checkpoint file: every
/// truncation and every single-byte flip loads as a structured
/// [`StoreError`] — the reader never panics and never accepts a damaged
/// snapshot.
#[test]
fn every_corruption_of_a_checkpoint_loads_as_a_structured_error() {
    let circuit = circuits::adder4();
    let faults = FaultList::collapsed(&circuit);
    let path = scratch("fixture");
    DigitalAtpg::new(&circuit)
        .with_checkpoint(CheckpointPolicy::default(), &path)
        .run(&faults)
        .unwrap();
    let pristine = std::fs::read(&path).unwrap();
    assert!(load_checkpoint(&path, &circuit, faults.faults()).is_ok());

    let step = (pristine.len() / 64).max(1);
    // Truncations at every sampled byte count (including the empty file).
    for cut in (0..pristine.len()).step_by(step) {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        let err = load_checkpoint(&path, &circuit, faults.faults())
            .expect_err("truncated checkpoint must not load");
        assert!(
            !err.to_string().is_empty(),
            "cut={cut}: error must be descriptive"
        );
    }
    // Single-byte flips at every sampled offset: header, length fields,
    // checksum and payload corruption are all caught (by field validation
    // or by the FNV-1a checksum).
    for offset in (0..pristine.len()).step_by(step) {
        let mut damaged = pristine.clone();
        damaged[offset] ^= 0x01;
        std::fs::write(&path, &damaged).unwrap();
        let err = load_checkpoint(&path, &circuit, faults.faults())
            .expect_err("flipped checkpoint must not load");
        assert!(!err.to_string().is_empty(), "offset={offset}");
    }
    // A foreign format version is refused with the dedicated variant.
    let version_bumped = String::from_utf8(pristine.clone()).unwrap().replacen(
        "msatpg-store 1 ",
        "msatpg-store 2 ",
        1,
    );
    std::fs::write(&path, version_bumped).unwrap();
    assert!(matches!(
        load_checkpoint(&path, &circuit, faults.faults()),
        Err(StoreError::VersionMismatch { .. })
    ));
    std::fs::remove_file(&path).ok();
}

/// The mixed-signal flow's checkpoint directory: both digital stages
/// journal into it, a rerun resumes from the completed snapshots, and a
/// corrupted snapshot silently falls back to a fresh campaign — in every
/// case producing reports identical to an uncheckpointed run.
#[test]
fn mixed_signal_checkpoint_dir_resumes_and_survives_corruption() {
    let figure4 = || {
        let adc = FlashAdc::uniform(2, 3.0).unwrap();
        let mut mixed = MixedCircuit::new(
            "figure4",
            msatpg::analog::filters::second_order_band_pass(),
            ConverterBlock::Flash(adc),
            circuits::figure3_circuit(),
        );
        mixed.connect_in_order(&["l0", "l2"]).unwrap();
        mixed.set_allowed_codes(AllowedCodes::new(
            2,
            vec![vec![true, false], vec![false, true], vec![true, true]],
        ));
        mixed
    };
    let plain = MixedSignalAtpg::new(figure4());
    let reference_c = plain.digital_constrained().unwrap();
    let reference_u = plain.digital_unconstrained().unwrap();

    let dir = scratch("mixed-dir");
    std::fs::create_dir_all(&dir).unwrap();
    let checkpointed =
        MixedSignalAtpg::new(figure4()).with_checkpoint(CheckpointPolicy::default(), &dir);

    // First run: journals fresh snapshots.
    let first = checkpointed.digital_constrained().unwrap();
    assert_reports_identical(&first, &reference_c, "checkpointed constrained");
    assert!(dir.join("digital_constrained.ckpt").is_file());
    let unconstrained = checkpointed.digital_unconstrained().unwrap();
    assert_reports_identical(&unconstrained, &reference_u, "checkpointed unconstrained");
    assert!(dir.join("digital_unconstrained.ckpt").is_file());

    // Second run: resumes from the completed snapshots (pure replay) and
    // still reports identically.
    let resumed = checkpointed.digital_constrained().unwrap();
    assert_reports_identical(&resumed, &reference_c, "resumed constrained");

    // A corrupted snapshot is not an error — the stage falls back to a
    // fresh campaign and overwrites it with a valid one.
    std::fs::write(dir.join("digital_constrained.ckpt"), b"not a checkpoint").unwrap();
    let recovered = checkpointed.digital_constrained().unwrap();
    assert_reports_identical(&recovered, &reference_c, "recovered constrained");
    let snapshot = load_checkpoint(
        &dir.join("digital_constrained.ckpt"),
        checkpointed.circuit().digital(),
        FaultList::collapsed(checkpointed.circuit().digital()).faults(),
    )
    .unwrap();
    assert_eq!(snapshot.outcomes.len(), reference_c.total_faults);
    std::fs::remove_dir_all(&dir).ok();
}
