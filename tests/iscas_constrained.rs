//! Integration test of the Table-4 experiment on the smallest benchmark:
//! constrained vs. unconstrained OBDD ATPG on the c432 stand-in.

use msatpg::conversion::constraints::thermometer_codes;
use msatpg::conversion::FlashAdc;
use msatpg::core::digital_atpg::DigitalAtpg;
use msatpg::core::ConverterBlock;
use msatpg::digital::benchmarks;
use msatpg::digital::fault::FaultList;
use msatpg::digital::fault_sim::FaultSimulator;
use msatpg::MixedCircuit;

#[test]
fn c432_constraints_increase_untestable_faults_and_effort() {
    let digital = benchmarks::c432();
    let faults = FaultList::collapsed(&digital);
    assert!(
        faults.len() > 200,
        "c432 stand-in has a substantial fault list"
    );

    // Case 1: direct access to the digital block.
    let mut free = DigitalAtpg::new(&digital);
    let report_free = free.run(&faults).expect("unconstrained ATPG");

    // Case 2: 15 inputs constrained to thermometer codes, selected with the
    // same pseudo-random procedure as the paper.
    let analog = msatpg::analog::filters::fifth_order_chebyshev();
    let converter = ConverterBlock::Flash(FlashAdc::uniform(15, 4.0).unwrap());
    let mut mixed = MixedCircuit::new("c432-mixed", analog, converter, digital.clone());
    mixed.connect_randomly(1995).unwrap();
    let mut constrained = DigitalAtpg::new(&digital)
        .with_constraints(&mixed.constrained_inputs(), &thermometer_codes(15))
        .unwrap();
    let report_constrained = constrained.run(&faults).expect("constrained ATPG");

    // Shape of Table 4: constraints can only lose coverage, never gain it.
    assert!(report_constrained.untestable_count() >= report_free.untestable_count());
    assert!(report_constrained.detected <= report_free.detected);
    // The unconstrained circuit is (almost) fully testable.
    assert!(
        report_free.coverage() > 0.95,
        "coverage {}",
        report_free.coverage()
    );

    // Every generated vector, in both cases, really detects its target fault.
    let sim = FaultSimulator::new(&digital);
    for report in [&report_free, &report_constrained] {
        for vector in &report.vectors {
            assert!(
                sim.detects(vector.fault, &vector.concretize(false))
                    .unwrap(),
                "{} does not detect {}",
                vector.to_pattern_string(),
                vector.fault.describe(&digital)
            );
        }
    }

    // Constrained vectors respect the thermometer-code constraint.
    let codes = thermometer_codes(15);
    let constrained_lines = mixed.constrained_inputs();
    let pi_order: Vec<_> = digital.primary_inputs().to_vec();
    for vector in &report_constrained.vectors {
        let pattern = vector.concretize(false);
        let constrained_bits: Vec<bool> = constrained_lines
            .iter()
            .map(|line| {
                let pos = pi_order.iter().position(|s| s == line).unwrap();
                pattern[pos]
            })
            .collect();
        assert!(
            codes.allows(&constrained_bits),
            "constrained vector violates the thermometer-code constraint"
        );
    }
}

#[test]
fn untestable_faults_are_really_untestable_by_random_search() {
    // Cross-check the ATPG's "untestable" verdicts on the Figure-3 circuit by
    // exhaustive enumeration of the constrained input space.
    let digital = msatpg::digital::circuits::figure3_circuit();
    let faults = FaultList::all(&digital);
    let l0 = digital.find_signal("l0").unwrap();
    let l2 = digital.find_signal("l2").unwrap();
    let codes = msatpg::conversion::constraints::AllowedCodes::new(
        2,
        vec![vec![true, false], vec![false, true], vec![true, true]],
    );
    let mut atpg = DigitalAtpg::new(&digital)
        .with_constraints(&[l0, l2], &codes)
        .unwrap();
    let report = atpg.run(&faults).unwrap();
    let sim = FaultSimulator::new(&digital);
    // Enumerate every input pattern allowed by Fc and confirm that none
    // detects an "untestable" fault.
    for &fault in &report.untestable {
        for pattern_bits in 0..16u32 {
            let pattern: Vec<bool> = (0..4).map(|b| (pattern_bits >> b) & 1 == 1).collect();
            // PI order: l0, l1, l2, l4.
            if !codes.allows(&[pattern[0], pattern[2]]) {
                continue;
            }
            assert!(
                !sim.detects(fault, &pattern).unwrap(),
                "fault {} claimed untestable but detected by {:?}",
                fault.describe(&digital),
                pattern
            );
        }
    }
}
