//! Acceptance tests of dynamic variable ordering (this PR's headline
//! scenario): on the constrained c432 campaign, `DvoMode::Never` and
//! `DvoMode::UntilConvergence` produce *equivalent* reports — identical
//! fault coverage and outcome taxonomy, every vector re-verified through
//! the PPSFP fault simulator — while within one mode the report stays
//! byte-identical across thread counts.  A campaign checkpointed under one
//! mode resumes byte-identically under the same mode and equivalently
//! under the other (the journaled prefix replays verbatim; only the
//! recomputed tail feels the order).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use msatpg::conversion::constraints::{thermometer_codes, AllowedCodes};
use msatpg::conversion::FlashAdc;
use msatpg::core::digital_atpg::{AbortReason, AtpgReport, DigitalAtpg};
use msatpg::core::store::load_checkpoint;
use msatpg::core::{CheckpointPolicy, ConverterBlock, DvoMode};
use msatpg::digital::benchmarks;
use msatpg::digital::fault::FaultList;
use msatpg::digital::fault_sim::FaultSimulator;
use msatpg::digital::netlist::{Netlist, SignalId};
use msatpg::exec::{CancelToken, ExecPolicy};
use msatpg::MixedCircuit;

/// A unique scratch path under the system temp directory.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "msatpg-dvo-{}-{tag}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn assert_reports_identical(a: &AtpgReport, b: &AtpgReport, context: &str) {
    assert_eq!(a.circuit, b.circuit, "{context}: circuit");
    assert_eq!(a.total_faults, b.total_faults, "{context}: total_faults");
    assert_eq!(a.detected, b.detected, "{context}: detected");
    assert_eq!(a.untestable, b.untestable, "{context}: untestable");
    assert_eq!(a.degraded, b.degraded, "{context}: degraded");
    assert_eq!(a.aborted, b.aborted, "{context}: aborted");
    assert_eq!(a.vectors, b.vectors, "{context}: vectors");
    assert_eq!(a.constrained, b.constrained, "{context}: constrained");
}

/// The Table-4 constrained setup shared by both tests: c432 with 15 inputs
/// driven through a flash converter admitting thermometer codes only.
fn constrained_c432() -> (Netlist, Vec<SignalId>, AllowedCodes) {
    let digital = benchmarks::c432();
    let analog = msatpg::analog::filters::fifth_order_chebyshev();
    let converter = ConverterBlock::Flash(FlashAdc::uniform(15, 4.0).unwrap());
    let mut mixed = MixedCircuit::new("c432-mixed", analog, converter, digital.clone());
    mixed.connect_randomly(1995).unwrap();
    let lines = mixed.constrained_inputs();
    (digital, lines, thermometer_codes(15))
}

/// Replays every vector of `report` through the PPSFP fault simulator and
/// returns the detected fault set (sorted).  Campaign vectors all satisfy
/// `Fc`, so this set must be exactly "every fault that is not untestable"
/// — independently of which cubes the variable order happened to pick.
fn ppsfp_replayed_coverage(
    digital: &Netlist,
    faults: &FaultList,
    report: &AtpgReport,
) -> Vec<msatpg::digital::fault::StuckAtFault> {
    let patterns: Vec<Vec<bool>> = report.vectors.iter().map(|v| v.concretize(false)).collect();
    let mut detected = FaultSimulator::new(digital)
        .run(faults, &patterns)
        .unwrap()
        .detected()
        .to_vec();
    detected.sort();
    detected
}

/// `MSATPG_DVO=never` vs `until-convergence` on the constrained c432
/// campaign: identical covered-fault count, identical untestable set, no
/// governed outcomes in either, identical PPSFP-replayed coverage sets,
/// every vector of both campaigns confirmed by fault simulation — and the
/// sifted campaign is byte-identical across thread counts 1, 2 and 8.
#[test]
fn dvo_modes_produce_equivalent_constrained_reports() {
    let (digital, lines, codes) = constrained_c432();
    let faults = FaultList::collapsed(&digital);
    let engine = |dvo: DvoMode| -> DigitalAtpg<'_> {
        DigitalAtpg::new(&digital)
            .with_constraints(&lines, &codes)
            .unwrap()
            .with_dvo(dvo)
    };

    let never = engine(DvoMode::Never).run(&faults).unwrap();
    let sifted = engine(DvoMode::UntilConvergence).run(&faults).unwrap();

    // Identical outcome taxonomy: same covered-fault count, same
    // untestable faults, nothing degraded or aborted (no governance armed).
    assert_eq!(sifted.detected, never.detected, "covered-fault count");
    assert_eq!(sifted.untestable, never.untestable, "untestable fault set");
    assert!(never.degraded.is_empty() && sifted.degraded.is_empty());
    assert!(never.aborted.is_empty() && sifted.aborted.is_empty());

    // Every vector of both campaigns detects its fault under both
    // concretizations of the don't-care bits.
    let sim = FaultSimulator::new(&digital);
    for (tag, report) in [("never", &never), ("until-convergence", &sifted)] {
        for vector in &report.vectors {
            for filler in [false, true] {
                assert!(
                    sim.detects(vector.fault, &vector.concretize(filler))
                        .unwrap(),
                    "{tag}: vector for {} fails fault simulation",
                    vector.fault
                );
            }
        }
    }

    // The PPSFP-replayed coverage sets agree exactly: the modes pick
    // different cubes but cover the same faults.
    assert_eq!(
        ppsfp_replayed_coverage(&digital, &faults, &sifted),
        ppsfp_replayed_coverage(&digital, &faults, &never),
        "PPSFP-replayed coverage diverges between DVO modes"
    );

    // Within one mode the worker pool stays invisible: the sifted campaign
    // is byte-identical at every thread count (workers rebuild the same
    // order at the same construction-time safe point).
    for policy in [
        ExecPolicy::Threads(1),
        ExecPolicy::Threads(2),
        ExecPolicy::Threads(8),
    ] {
        let report = engine(DvoMode::UntilConvergence)
            .with_policy(policy)
            .run(&faults)
            .unwrap();
        assert_reports_identical(&report, &sifted, &format!("until-convergence {policy:?}"));
    }
}

/// Checkpoint/resume crossover: a sifted campaign interrupted by a step
/// quota resumes byte-identically under the same mode (threaded, too), and
/// resuming the same snapshot under `DvoMode::Never` still produces an
/// equivalent report — the journaled prefix replays verbatim and the
/// recomputed tail covers the same faults with different cubes.
#[test]
fn dvo_checkpoint_resume_crossover() {
    let (digital, lines, codes) = constrained_c432();
    let faults = FaultList::collapsed(&digital);
    let engine = |dvo: DvoMode| -> DigitalAtpg<'_> {
        DigitalAtpg::new(&digital)
            .with_constraints(&lines, &codes)
            .unwrap()
            .with_dvo(dvo)
    };

    let reference = engine(DvoMode::UntilConvergence).run(&faults).unwrap();

    let path = scratch("crossover");
    let interrupted = engine(DvoMode::UntilConvergence)
        .with_cancel_token(CancelToken::with_step_quota(25))
        .with_checkpoint(CheckpointPolicy::default(), &path)
        .run(&faults)
        .unwrap();
    let deadline_tail = interrupted
        .aborted
        .iter()
        .filter(|(_, r)| *r == AbortReason::Deadline)
        .count();
    assert!(deadline_tail > 0, "the quota must actually interrupt");
    let snapshot = load_checkpoint(&path, &digital, faults.faults()).unwrap();
    std::fs::remove_file(&path).ok();

    // Same mode, threaded: byte-identical to the uninterrupted campaign.
    let resumed = engine(DvoMode::UntilConvergence)
        .with_resume(snapshot.clone())
        .with_policy(ExecPolicy::Threads(2))
        .run(&faults)
        .unwrap();
    assert_reports_identical(&resumed, &reference, "same-mode resume");

    // Crossed mode: equivalent taxonomy, same replayed coverage.
    let crossed = engine(DvoMode::Never)
        .with_resume(snapshot)
        .run(&faults)
        .unwrap();
    assert_eq!(crossed.detected, reference.detected, "crossover: detected");
    assert_eq!(
        crossed.untestable, reference.untestable,
        "crossover: untestable"
    );
    assert!(crossed.aborted.is_empty(), "crossover: nothing aborted");
    assert_eq!(
        ppsfp_replayed_coverage(&digital, &faults, &crossed),
        ppsfp_replayed_coverage(&digital, &faults, &reference),
        "crossover: replayed coverage diverges"
    );
}
