//! Acceptance test of the resource-governed ATPG (the robustness PR's
//! headline scenario): the constrained c432 campaign under a deliberately
//! tiny BDD node budget completes without panicking or hanging, reports the
//! affected faults as `Degraded` / `Aborted`, leaves the outcome of every
//! other fault unchanged, and stays byte-identical across thread counts.

use msatpg::bdd::BddBudget;
use msatpg::conversion::constraints::{thermometer_codes, AllowedCodes};
use msatpg::conversion::FlashAdc;
use msatpg::core::digital_atpg::{AbortReason, AtpgReport, DigitalAtpg};
use msatpg::core::ConverterBlock;
use msatpg::digital::benchmarks;
use msatpg::digital::fault::{FaultList, StuckAtFault};
use msatpg::digital::fault_sim::FaultSimulator;
use msatpg::digital::netlist::SignalId;
use msatpg::exec::ExecPolicy;
use msatpg::MixedCircuit;
use std::collections::BTreeSet;

fn assert_reports_identical(a: &AtpgReport, b: &AtpgReport, context: &str) {
    assert_eq!(a.total_faults, b.total_faults, "{context}: total_faults");
    assert_eq!(a.detected, b.detected, "{context}: detected");
    assert_eq!(a.untestable, b.untestable, "{context}: untestable");
    assert_eq!(a.degraded, b.degraded, "{context}: degraded");
    assert_eq!(a.aborted, b.aborted, "{context}: aborted");
    assert_eq!(a.vectors, b.vectors, "{context}: vectors");
}

#[test]
fn c432_constrained_under_a_tiny_node_budget_degrades_gracefully() {
    let digital = benchmarks::c432();
    let faults = FaultList::collapsed(&digital);

    // The same constrained setup as the Table-4 experiment: 15 digital
    // inputs driven through a flash converter, admitting thermometer codes
    // only.
    let analog = msatpg::analog::filters::fifth_order_chebyshev();
    let converter = ConverterBlock::Flash(FlashAdc::uniform(15, 4.0).unwrap());
    let mut mixed = MixedCircuit::new("c432-mixed", analog, converter, digital.clone());
    mixed.connect_randomly(1995).unwrap();
    let lines: Vec<SignalId> = mixed.constrained_inputs();
    let codes: AllowedCodes = thermometer_codes(15);

    let engine = |budget: BddBudget, policy: ExecPolicy| -> DigitalAtpg<'_> {
        DigitalAtpg::new(&digital)
            .with_constraints(&lines, &codes)
            .unwrap()
            .with_budget(budget)
            .with_policy(policy)
    };

    // Ungoverned reference, and the protected baseline (signal functions
    // plus the constraint BDD) every governed target restarts from.
    let mut reference_engine = engine(BddBudget::UNLIMITED, ExecPolicy::Serial);
    let baseline = reference_engine.collect_garbage();
    let reference = reference_engine.run(&faults).unwrap();

    // A budget barely above the baseline: hard faults exhaust it while
    // shallow cones still fit.  The run must complete without panicking.
    let tiny = BddBudget::UNLIMITED.with_max_live_nodes(baseline + baseline / 16);
    let governed = engine(tiny, ExecPolicy::Serial).run(&faults).unwrap();

    // Every fault is accounted for, and the budget really fired.
    assert_eq!(
        governed.detected + governed.untestable_count() + governed.aborted_count(),
        faults.len()
    );
    assert!(
        governed.degraded_count() + governed.aborted_count() > 0,
        "the tiny budget must affect at least one fault"
    );
    assert!(governed
        .aborted
        .iter()
        .all(|(_, r)| *r == AbortReason::Budget));

    // Coverage for the unaffected faults is unchanged: a fault the
    // reference detected is either still detected (deterministically,
    // through sharing, or by the degradation fallback) or was aborted —
    // never silently lost.
    assert!(governed.detected + governed.aborted_count() >= reference.detected);
    // Untestability can only be decided within the budget, so governed
    // untestables are a subset of the reference's, and the missing ones
    // were aborted.
    let reference_untestable: BTreeSet<StuckAtFault> =
        reference.untestable.iter().copied().collect();
    let aborted_faults: BTreeSet<StuckAtFault> = governed.aborted.iter().map(|&(f, _)| f).collect();
    for fault in &governed.untestable {
        assert!(reference_untestable.contains(fault));
    }
    for fault in &reference.untestable {
        assert!(
            governed.untestable.contains(fault) || aborted_faults.contains(fault),
            "untestable fault {fault} vanished from the governed report"
        );
    }

    // Degraded vectors are real, fully specified, constraint-respecting
    // tests.
    let positions: Vec<usize> = lines
        .iter()
        .map(|&l| {
            digital
                .primary_inputs()
                .iter()
                .position(|&pi| pi == l)
                .unwrap()
        })
        .collect();
    let degraded: BTreeSet<StuckAtFault> = governed.degraded.iter().copied().collect();
    let sim = FaultSimulator::new(&digital);
    for vector in &governed.vectors {
        if !degraded.contains(&vector.fault) {
            continue;
        }
        assert!(vector.assignment.iter().all(Option::is_some));
        let pattern = vector.concretize(false);
        let constrained: Vec<bool> = positions.iter().map(|&i| pattern[i]).collect();
        assert!(codes.allows(&constrained), "degraded vector violates Fc");
        assert!(sim.detects(vector.fault, &pattern).unwrap());
    }

    // Byte-identical across thread counts.
    for threads in [1usize, 2, 8] {
        let parallel = engine(tiny, ExecPolicy::Threads(threads))
            .run(&faults)
            .unwrap();
        assert_reports_identical(&parallel, &governed, &format!("threads={threads}"));
    }
}
