#!/usr/bin/env bash
# Panic-site ratchet for the library crates.
#
# Counts `.unwrap()` / `.expect(` occurrences in non-test library code (test
# modules and comment lines are stripped) and fails when the count rises
# above the committed baseline.  Sixteen historical sites remain — each one
# an internal invariant with a justified message, audited in the robustness
# PR — and the ratchet keeps new fallible paths from joining them: new code
# must surface failures as structured errors (`BddError`, `CoreError`,
# `AnalogError`, `DigitalError`) instead of panicking.
#
# When you remove a site, lower BASELINE so it cannot creep back.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=16

LIB_DIRS=(
    crates/bdd/src
    crates/exec/src
    crates/digital/src
    crates/analog/src
    crates/conversion/src
    crates/core/src
    src
)

total=0
report=""
for file in $(find "${LIB_DIRS[@]}" -name "*.rs" | sort); do
    # Strip everything from the first `#[cfg(test)]` on (test modules live at
    # the bottom of each file in this workspace) and comment-only lines (doc
    # examples legitimately use `unwrap` for brevity).
    count=$(awk '/#\[cfg\(test\)\]/{exit} !/^[[:space:]]*\/\//' "$file" \
        | grep -c '\.unwrap()\|\.expect(' || true)
    if [ "$count" -gt 0 ]; then
        report+="    ${count}  ${file}"$'\n'
        total=$((total + count))
    fi
done

echo "==> panic-site ratchet: ${total} unwrap/expect sites (baseline ${BASELINE})"
if [ -n "$report" ]; then
    printf '%s' "$report"
fi

if [ "$total" -gt "$BASELINE" ]; then
    echo "error: new .unwrap()/.expect( sites in library code (${total} > ${BASELINE})." >&2
    echo "       Return a structured error instead, or justify and bump BASELINE." >&2
    exit 1
fi

if [ "$total" -lt "$BASELINE" ]; then
    echo "note: count dropped below the baseline — lower BASELINE=${BASELINE} to ${total} in $0 to lock in the progress."
fi
