#!/usr/bin/env bash
# The single local CI entry point: runs exactly the steps of
# .github/workflows/ci.yml, in the same order, so the offline container and
# the hosted workflow can never drift apart.  Keep the two files in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release

echo "==> test"
cargo test -q

echo "==> fmt check"
cargo fmt --all --check

echo "==> panic-site ratchet (lint_unwrap)"
./scripts/lint_unwrap.sh

echo "==> docs (rustdoc, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Thread counts, PPSFP word widths and the BDD variable-ordering mode are
# paired diagonally (1 thread at 8 lanes without sifting, 2 at 4 and 8 at 1
# with sifting to convergence) instead of a full 3x3x2 product: every
# width, every thread count and both DVO modes are exercised through the
# env knobs while the suite runs three times, not eighteen.  The suites
# additionally cross widths, policies and DVO modes internally, so the
# pairing loses no coverage.
echo "==> determinism matrix (proptests + dvo_equivalence at MSATPG_THREADS:MSATPG_WORD_WIDTH:MSATPG_DVO = 1:8:never/2:4:until-convergence/8:1:until-convergence)"
for triple in 1:8:never 2:4:until-convergence 8:1:until-convergence; do
    threads=${triple%%:*}
    rest=${triple#*:}
    width=${rest%%:*}
    dvo=${rest#*:}
    echo "    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width} MSATPG_DVO=${dvo}"
    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width} MSATPG_DVO=${dvo} \
        cargo test -q --release --test proptests
    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width} MSATPG_DVO=${dvo} \
        cargo test -q --release --test dvo_equivalence
done

echo "==> kill-and-resume smoke (checkpoint_resume at MSATPG_THREADS:MSATPG_WORD_WIDTH:MSATPG_DVO = 1:8:never/2:4:until-convergence/8:1:until-convergence)"
for triple in 1:8:never 2:4:until-convergence 8:1:until-convergence; do
    threads=${triple%%:*}
    rest=${triple#*:}
    width=${rest%%:*}
    dvo=${rest#*:}
    echo "    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width} MSATPG_DVO=${dvo}"
    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width} MSATPG_DVO=${dvo} \
        cargo test -q --release --test checkpoint_resume
    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width} MSATPG_DVO=${dvo} \
        cargo run -q --release --example checkpoint_resume
done

echo "==> perf-regression smoke (bench_kernels --check)"
cargo run --release -p msatpg-bench --bin bench_kernels -- --check

echo "==> CI passed"
