#!/usr/bin/env bash
# The single local CI entry point: runs exactly the steps of
# .github/workflows/ci.yml, in the same order, so the offline container and
# the hosted workflow can never drift apart.  Keep the two files in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release

echo "==> test"
cargo test -q

echo "==> fmt check"
cargo fmt --all --check

echo "==> panic-site ratchet (lint_unwrap)"
./scripts/lint_unwrap.sh

echo "==> docs (rustdoc, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Thread counts and PPSFP word widths are paired diagonally (1 thread at 8
# lanes, 2 at 4, 8 at 1) instead of a full 3x3 product: every width and
# every thread count is exercised through the env knobs while the suite
# runs three times, not nine.  The suites additionally cross widths and
# policies internally, so the pairing loses no coverage.
echo "==> determinism matrix (proptests at MSATPG_THREADS x MSATPG_WORD_WIDTH = 1:8/2:4/8:1)"
for pair in 1:8 2:4 8:1; do
    threads=${pair%:*}
    width=${pair#*:}
    echo "    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width}"
    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width} \
        cargo test -q --release --test proptests
done

echo "==> kill-and-resume smoke (checkpoint_resume at MSATPG_THREADS x MSATPG_WORD_WIDTH = 1:8/2:4/8:1)"
for pair in 1:8 2:4 8:1; do
    threads=${pair%:*}
    width=${pair#*:}
    echo "    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width}"
    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width} \
        cargo test -q --release --test checkpoint_resume
    MSATPG_THREADS=${threads} MSATPG_WORD_WIDTH=${width} \
        cargo run -q --release --example checkpoint_resume
done

echo "==> perf-regression smoke (bench_kernels --check)"
cargo run --release -p msatpg-bench --bin bench_kernels -- --check

echo "==> CI passed"
