#!/usr/bin/env bash
# The single local CI entry point: runs exactly the steps of
# .github/workflows/ci.yml, in the same order, so the offline container and
# the hosted workflow can never drift apart.  Keep the two files in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release

echo "==> test"
cargo test -q

echo "==> fmt check"
cargo fmt --all --check

echo "==> panic-site ratchet (lint_unwrap)"
./scripts/lint_unwrap.sh

echo "==> docs (rustdoc, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> determinism matrix (proptest suite at MSATPG_THREADS=1/2/8)"
for threads in 1 2 8; do
    echo "    MSATPG_THREADS=${threads}"
    MSATPG_THREADS=${threads} cargo test -q --release --test proptests
done

echo "==> kill-and-resume smoke (checkpoint_resume at MSATPG_THREADS=1/2/8)"
for threads in 1 2 8; do
    echo "    MSATPG_THREADS=${threads}"
    MSATPG_THREADS=${threads} cargo test -q --release --test checkpoint_resume
    MSATPG_THREADS=${threads} cargo run -q --release --example checkpoint_resume
done

echo "==> perf-regression smoke (bench_kernels --check)"
cargo run --release -p msatpg-bench --bin bench_kernels -- --check

echo "==> CI passed"
