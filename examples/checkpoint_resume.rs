//! Kill-and-resume smoke: the constrained c432 campaign is interrupted by
//! a step-quota cancel token, checkpointed to disk, resumed from the
//! snapshot, and the resumed report is compared **byte for byte** against
//! the uninterrupted one.  Exits non-zero on any divergence.
//!
//! Run with `cargo run --release --example checkpoint_resume`; the worker
//! count follows `MSATPG_THREADS` (the CI matrix runs 1, 2 and 8).

use std::time::Duration;

use msatpg::conversion::constraints::thermometer_codes;
use msatpg::conversion::FlashAdc;
use msatpg::core::digital_atpg::DigitalAtpg;
use msatpg::core::store::{load_checkpoint, save_report};
use msatpg::core::{CheckpointPolicy, ConverterBlock};
use msatpg::digital::benchmarks;
use msatpg::digital::fault::FaultList;
use msatpg::exec::{CancelToken, ExecPolicy};
use msatpg::MixedCircuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let digital = benchmarks::c432();
    let faults = FaultList::collapsed(&digital);

    // The Table-4 constrained setup: 15 digital inputs driven through a
    // flash converter, admitting thermometer codes only.
    let analog = msatpg::analog::filters::fifth_order_chebyshev();
    let converter = ConverterBlock::Flash(FlashAdc::uniform(15, 4.0)?);
    let mut mixed = MixedCircuit::new("c432-mixed", analog, converter, digital.clone());
    mixed.connect_randomly(1995)?;
    let lines = mixed.constrained_inputs();
    let codes = thermometer_codes(15);

    let engine = || -> Result<DigitalAtpg<'_>, Box<dyn std::error::Error>> {
        Ok(DigitalAtpg::new(&digital)
            .with_constraints(&lines, &codes)?
            .with_policy(ExecPolicy::Auto))
    };

    let dir = std::env::temp_dir().join(format!("msatpg-resume-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // The uninterrupted reference campaign.
    let mut reference = engine()?.run(&faults)?;
    reference.cpu = Duration::ZERO;
    let reference_path = dir.join("uninterrupted.report");
    save_report(&reference_path, &digital, &reference)?;
    println!(
        "uninterrupted: {}/{} detected, {} vectors",
        reference.detected,
        reference.total_faults,
        reference.vector_count()
    );

    // The "kill": a step quota cancels the campaign after 25 targeted
    // faults; the checkpoint journal snapshots every outcome, including
    // the aborted tail.
    let checkpoint_path = dir.join("campaign.ckpt");
    let interrupted = engine()?
        .with_cancel_token(CancelToken::with_step_quota(25))
        .with_checkpoint(CheckpointPolicy::default(), &checkpoint_path)
        .run(&faults)?;
    println!(
        "interrupted:   {} aborted of {} (step quota fired)",
        interrupted.aborted_count(),
        interrupted.total_faults
    );
    if interrupted.aborted_count() == 0 {
        return Err("the step quota never fired; nothing was interrupted".into());
    }

    // The resume: journaled outcomes replay, aborted faults re-attempt.
    let snapshot = load_checkpoint(&checkpoint_path, &digital, faults.faults())?;
    println!(
        "checkpoint:    {} journaled outcomes loaded",
        snapshot.outcomes.len()
    );
    let mut resumed = engine()?.with_resume(snapshot).run(&faults)?;
    resumed.cpu = Duration::ZERO;
    let resumed_path = dir.join("resumed.report");
    save_report(&resumed_path, &digital, &resumed)?;
    println!(
        "resumed:       {}/{} detected, {} vectors",
        resumed.detected,
        resumed.total_faults,
        resumed.vector_count()
    );

    let reference_bytes = std::fs::read(&reference_path)?;
    let resumed_bytes = std::fs::read(&resumed_path)?;
    std::fs::remove_dir_all(&dir).ok();
    if reference_bytes == resumed_bytes {
        println!("OK: resumed report is byte-identical to the uninterrupted one");
        Ok(())
    } else {
        Err("resumed report differs from the uninterrupted one".into())
    }
}
