//! Example 2 of the paper: OBDD-based stuck-at test generation for the
//! Figure-3 digital circuit, with and without the constraint `Fc = l0 + l2`
//! imposed by the conversion block.
//!
//! Run with `cargo run --release --example constrained_atpg`.

use msatpg::conversion::constraints::AllowedCodes;
use msatpg::core::digital_atpg::DigitalAtpg;
use msatpg::digital::circuits;
use msatpg::digital::fault::FaultList;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = circuits::figure3_circuit();
    println!("{circuit}");
    let faults = FaultList::all(&circuit);
    println!("uncollapsed stuck-at faults: {}\n", faults.len());

    // Case 1: the digital block accessed directly.
    let mut atpg = DigitalAtpg::new(&circuit);
    let free = atpg.run(&faults)?;
    println!(
        "without constraints: {} detected, {} untestable, {} vectors",
        free.detected,
        free.untestable_count(),
        free.vector_count()
    );
    for vector in &free.vectors {
        println!(
            "  {}  (tests {})",
            vector.to_pattern_string(),
            vector.fault.describe(&circuit)
        );
    }

    // Case 2: l0 and l2 are driven by the conversion block and can never be
    // 0 at the same time.
    let l0 = circuit.find_signal("l0").unwrap();
    let l2 = circuit.find_signal("l2").unwrap();
    let fc = AllowedCodes::new(
        2,
        vec![vec![true, false], vec![false, true], vec![true, true]],
    );
    let mut constrained_atpg = DigitalAtpg::new(&circuit).with_constraints(&[l0, l2], &fc)?;
    let constrained = constrained_atpg.run(&faults)?;
    println!(
        "\nwith Fc = l0 + l2: {} detected, {} untestable, {} vectors",
        constrained.detected,
        constrained.untestable_count(),
        constrained.vector_count()
    );
    for fault in &constrained.untestable {
        println!("  untestable: {}", fault.describe(&circuit));
    }
    for vector in &constrained.vectors {
        println!(
            "  {}  (tests {})",
            vector.to_pattern_string(),
            vector.fault.describe(&circuit)
        );
    }
    println!(
        "\nThe vector generated for l3 s-a-0 forces l2 = 1 (activation) and l0 = 0\n\
         (propagation) — the paper's vector {{l0, l1, l2, l4}} = {{0, 0, 1, X}}."
    );
    Ok(())
}
