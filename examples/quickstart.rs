//! Quickstart: assemble the paper's Figure-4 mixed circuit (band-pass filter
//! → 2-comparator conversion block → Figure-3 digital circuit) and run the
//! complete mixed-signal test-generation flow.
//!
//! Run with `cargo run --release --example quickstart`.

use msatpg::analog::filters;
use msatpg::conversion::constraints::AllowedCodes;
use msatpg::conversion::FlashAdc;
use msatpg::core::{AtpgOptions, ConverterBlock};
use msatpg::digital::circuits;
use msatpg::{MixedCircuit, MixedSignalAtpg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble the mixed circuit of Figure 4.
    let analog = filters::second_order_band_pass();
    let converter = ConverterBlock::Flash(FlashAdc::uniform(2, 3.0)?);
    let digital = circuits::figure3_circuit();
    let mut mixed = MixedCircuit::new("figure4", analog, converter, digital);
    mixed.connect_in_order(&["l0", "l2"])?;
    // The analog operating range never produces the code (0, 0) — the
    // constraint Fc = l0 + l2 of Example 2.
    mixed.set_allowed_codes(AllowedCodes::new(
        2,
        vec![vec![true, false], vec![false, true], vec![true, true]],
    ));

    // 2. Run the whole flow: analog element tests, conversion-block tests and
    //    constrained digital stuck-at ATPG.
    let atpg = MixedSignalAtpg::new(mixed).with_options(AtpgOptions::default());
    let plan = atpg.run()?;
    let digital_netlist = atpg.circuit().digital();

    // 3. Report.
    println!("== digital block ==");
    println!(
        "  alone        : {}/{} faults detected, {} untestable, {} vectors",
        plan.digital_unconstrained.detected,
        plan.digital_unconstrained.total_faults,
        plan.digital_unconstrained.untestable_count(),
        plan.digital_unconstrained.vector_count()
    );
    println!(
        "  in the mixed circuit: {}/{} faults detected, {} untestable, {} vectors",
        plan.digital.detected,
        plan.digital.total_faults,
        plan.digital.untestable_count(),
        plan.digital.vector_count()
    );
    for vector in &plan.digital.vectors {
        println!(
            "    {} tests {}",
            vector.to_pattern_string(),
            vector.fault.describe(digital_netlist)
        );
    }

    println!("\n== analog block ==");
    for entry in &plan.analog {
        let status = if entry.outcome.is_tested() {
            "tested"
        } else {
            "NOT testable"
        };
        println!(
            "  {:<4} via {:<5} deviation {:>5.1}% : {}",
            entry.element,
            entry.parameter,
            entry.deviation * 100.0,
            status
        );
    }
    println!("  analog coverage: {:.0}%", plan.analog_coverage() * 100.0);

    println!("\n== conversion block ==");
    for entry in &plan.conversion {
        match (entry.comparator, entry.detectable_deviation) {
            (Some(k), Some(d)) => println!(
                "  R{} tested through Vt{} at {:.1}% deviation",
                entry.resistor,
                k,
                d * 100.0
            ),
            _ => println!("  R{} cannot be tested", entry.resistor),
        }
    }
    Ok(())
}
