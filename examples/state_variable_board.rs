//! The validation board of §3.1 / Figure 8: a state-variable filter, an
//! 8-bit A/D converter and a 4-bit adder.  The example computes the
//! worst-case component deviations, injects each fault and checks that the
//! measured parameter leaves its tolerance box and that the fault propagates
//! through the digital block (the paper's Table 8).
//!
//! Run with `cargo run --release --example state_variable_board`.

use msatpg::analog::fault::AnalogFault;
use msatpg::analog::filters;
use msatpg::analog::params::measure;
use msatpg::analog::sensitivity::WorstCaseAnalysis;
use msatpg::analog::tolerance::relative_deviation;
use msatpg::conversion::SarAdc;
use msatpg::core::ConverterBlock;
use msatpg::digital::circuits;
use msatpg::{MixedCircuit, MixedSignalAtpg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analog = filters::state_variable_filter();
    let mut mixed = MixedCircuit::new(
        "figure8-board",
        analog.clone(),
        ConverterBlock::Binary {
            adc: SarAdc::ad7820(),
            lines: 4,
        },
        circuits::adder4(),
    );
    mixed.connect_in_order(&["a0", "a1", "a2", "a3"])?;
    println!("{}", analog.name());

    // Computed worst-case component deviations.
    let report = WorstCaseAnalysis::new(analog.circuit(), analog.parameters())
        .with_parameter_tolerance(0.05)
        .with_worst_case(true)
        .run()?;

    let atpg = MixedSignalAtpg::new(mixed);
    let analog_tests = atpg.analog_tests(&report)?;

    println!(
        "{:<10} {:<6} {:>8} {:>8}  {}",
        "parameter", "comp.", "CD [%]", "MPD [%]", "propagates"
    );
    for (element_id, element) in report.elements() {
        let Some((parameter, cd)) = report
            .rows()
            .iter()
            .filter(|r| &r.element == element)
            .filter_map(|r| r.detectable_deviation.map(|d| (r.parameter.clone(), d)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        else {
            println!("{:<10} {:<6} {:>8} {:>8}  -", "-", element, "-", "-");
            continue;
        };
        let spec = analog
            .parameters()
            .iter()
            .find(|p| p.name == parameter)
            .unwrap();
        let nominal = measure(analog.circuit(), spec)?;
        let faulty = AnalogFault::deviation(*element_id, -cd.min(0.95)).apply(analog.circuit());
        let mpd = relative_deviation(measure(&faulty, spec)?, nominal).abs();
        let propagates = analog_tests
            .iter()
            .find(|e| &e.element == element)
            .map(|e| e.outcome.is_tested())
            .unwrap_or(false);
        println!(
            "{:<10} {:<6} {:>8.1} {:>8.1}  {}",
            parameter,
            element,
            cd * 100.0,
            mpd * 100.0,
            if propagates { "yes" } else { "no" }
        );
    }
    println!(
        "\nEvery injected deviation of size CD pushes its parameter out of the ±5% box\n\
         (MPD ≥ 5%), reproducing the behaviour observed on the paper's discrete board."
    );
    Ok(())
}
