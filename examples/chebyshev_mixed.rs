//! Example 3 of the paper (reduced): the fifth-order Chebyshev filter feeds a
//! 15-comparator conversion block whose outputs drive 15 randomly selected
//! inputs of an ISCAS85-class digital circuit.  The example runs the
//! constrained digital ATPG and the comparator-propagation study for the
//! c432 stand-in.
//!
//! Run with `cargo run --release --example chebyshev_mixed`.

use msatpg::analog::filters;
use msatpg::conversion::FlashAdc;
use msatpg::core::digital_atpg::DigitalAtpg;
use msatpg::core::{AnalogAtpg, ConverterBlock};
use msatpg::digital::benchmarks;
use msatpg::digital::fault::FaultList;
use msatpg::MixedCircuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analog = filters::fifth_order_chebyshev();
    let converter = ConverterBlock::Flash(FlashAdc::uniform(15, 4.0)?);
    let digital = benchmarks::c432();
    println!("analog block : {}", analog.name());
    println!("digital block: {digital}");

    let mut mixed = MixedCircuit::new("example3-c432", analog, converter, digital);
    mixed.connect_randomly(1995)?;
    println!(
        "constrained digital inputs: {:?}\n",
        mixed
            .constrained_inputs()
            .iter()
            .map(|&s| mixed.digital().signal_name(s).to_owned())
            .collect::<Vec<_>>()
    );

    // Constrained vs unconstrained stuck-at ATPG on the digital block.
    let faults = FaultList::collapsed(mixed.digital());
    let mut free = DigitalAtpg::new(mixed.digital());
    let report_free = free.run(&faults)?;
    let mut constrained = DigitalAtpg::new(mixed.digital())
        .with_constraints(&mixed.constrained_inputs(), &mixed.allowed_codes())?;
    let report_constrained = constrained.run(&faults)?;
    println!(
        "digital ATPG without constraints: {} untestable, {} vectors, {:.2} s",
        report_free.untestable_count(),
        report_free.vector_count(),
        report_free.cpu.as_secs_f64()
    );
    println!(
        "digital ATPG with constraints   : {} untestable, {} vectors, {:.2} s",
        report_constrained.untestable_count(),
        report_constrained.vector_count(),
        report_constrained.cpu.as_secs_f64()
    );

    // Which comparators can propagate an analog fault effect?
    let study = AnalogAtpg::new(&mixed).comparator_propagation_study()?;
    let blocked_d = study.iter().filter(|&&(d, _)| !d).count();
    let blocked_dbar = study.iter().filter(|&&(_, dbar)| !dbar).count();
    println!(
        "\ncomparators through which a D cannot be propagated : {blocked_d} of {}",
        study.len()
    );
    println!(
        "comparators through which a D' cannot be propagated: {blocked_dbar} of {}",
        study.len()
    );
    Ok(())
}
