//! Figure 6 of the paper: the OBDDs of the Figure-3 outputs when the
//! conversion-block lines carry composite values, printed as text trees and
//! Graphviz DOT.
//!
//! Run with `cargo run --release --example figure6_obdd`.

use msatpg::bdd::{to_dot, to_text_tree, BddManager};

fn main() {
    // Variables in the paper's ordering: the external inputs first, the
    // composite variable D last.
    let mut m = BddManager::new();
    let l1 = m.var("l1");
    let l4 = m.var("l4");
    let d = m.var("D");

    // Composite values on the constrained lines: l0 = D, l2 = D'.
    let l0 = d;
    let l2 = m.not(d);
    let l3 = l2; // fanout branch of l2
    let l6 = m.or(l0, l3);
    let l7 = m.or(l1, l2);
    let vo1 = m.and(l6, l7);
    let vo2 = m.and(l6, l4);

    println!("OBDD of Vo1 (l0 = D, l2 = D'):\n{}", to_text_tree(&m, vo1));
    println!("OBDD of Vo2 (l0 = D, l2 = D'):\n{}", to_text_tree(&m, vo2));

    let d_var = m.var_index("D").unwrap();
    for (name, f) in [("Vo1", vo1), ("Vo2", vo2)] {
        let diff = m.boolean_difference(f, d_var);
        match m.sat_one(diff) {
            Some(cube) => println!("{name}: propagating assignment exists, e.g. {cube}"),
            None => println!("{name}: the composite value cannot be observed here"),
        }
    }
    println!();
    println!("{}", to_dot(&m, vo1, "Vo1"));
    println!("{}", to_dot(&m, vo2, "Vo2"));
}
