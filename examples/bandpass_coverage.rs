//! Example 1 of the paper: analog test selection for the second-order
//! band-pass filter — worst-case element deviations, the bipartite coverage
//! graph and the selected parameter test set.
//!
//! Run with `cargo run --release --example bandpass_coverage`.

use msatpg::analog::coverage::CoverageGraph;
use msatpg::analog::filters;
use msatpg::analog::sensitivity::WorstCaseAnalysis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let filter = filters::second_order_band_pass();
    println!("{}", filter.name());
    println!(
        "elements: {:?}",
        filter
            .circuit()
            .passive_elements()
            .iter()
            .map(|&e| filter.circuit().element(e).name.clone())
            .collect::<Vec<_>>()
    );
    println!(
        "parameters: {:?}\n",
        filter
            .parameters()
            .iter()
            .map(|p| p.name.clone())
            .collect::<Vec<_>>()
    );

    // Worst-case analysis: ±5% parameter boxes, fault-free elements anywhere
    // inside their own ±5% tolerance.
    let report = WorstCaseAnalysis::new(filter.circuit(), filter.parameters())
        .with_parameter_tolerance(0.05)
        .with_element_tolerance(0.05)
        .with_worst_case(true)
        .run()?;
    println!("worst-case element deviation matrix [%]:");
    println!("{}", report.to_table());

    let graph = CoverageGraph::from_report(&report);
    let selection = graph.select_test_set();
    println!("selected test set: {{{}}}", selection.parameters.join(", "));
    println!("per-element coverage achieved by the selection:");
    for (element, deviation) in &selection.element_coverage {
        match deviation {
            Some(d) => println!("  {element:<4} detectable at {:>6.1}% deviation", d * 100.0),
            None => println!("  {element:<4} not covered"),
        }
    }
    println!(
        "\nIn the paper the gains A1 and A2 form the test set: A1 covers Rg and Rd\n\
         (the only elements the center-frequency gain depends on) and A2 covers the rest."
    );
    Ok(())
}
